"""Morsel-driven parallel streaming execution.

AQUOMAN's pipeline is a *stream*: column pages leave the flash channels,
pass the Row Selector (which emits Row-Mask Vectors), feed the Row
Transformer, and are reduced by a Swissknife operator — nothing ever
holds a whole base column.  This module gives the software engine the
same shape.  A plan fragment rooted at a base-table scan is split into
page-aligned **morsels**; each morsel runs Row Selector → transform
chain → partial Swissknife reduction, and the partials merge with rules
that keep the result bit-identical to the monolithic executor:

- Filter/Project chains concatenate in morsel order (row-wise pure
  expressions commute with splitting);
- group-by partials re-reduce: group numbering is first-appearance
  order, which composes under concatenation, and COUNT/INT-SUM/MIN/MAX
  are associative on int64;
- sort partials are presorted runs merged by one stable lexsort, so tie
  order (original row order) survives exactly;
- top-k partials keep each run's first k rows and re-select.

Aggregates whose merge would change float rounding order (AVG, SUM over
float values) and COUNT DISTINCT are *not* reduced per morsel: the
static analyzer's merge-safety proof
(:func:`repro.analysis.morselsafety.aggregate_merge_verdict`) refuses
that terminal, the monolithic operator runs as usual, and extraction
retries on the subtree below it.

Morsels are aligned so every column's page boundary is also a morsel
boundary; morsels therefore touch disjoint page sets and the per-morsel
page-skip counts add up exactly in the trace.

Three ``worker_backend`` settings run the spans (all bit-identical):
``"serial"`` runs them inline, ``"thread"`` uses the shared persistent
thread pool (the NumPy kernels release the GIL, but Python-level
dispatch stays serialised), and ``"process"`` dispatches span batches
to the persistent forked worker pool in
:mod:`repro.engine.procpool` — genuinely concurrent interpreters over
the same (copy-on-write / page-cache-shared) column data.  The
per-span work lives in :class:`SpanRunner`, which both the parent and
the pool workers instantiate; partials cross the process boundary via
:func:`pack_partial`/:func:`unpack_partial`, which serialise values
but replace base-column string heaps with name tokens so the parent
re-attaches its own heap objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.morselsafety import aggregate_merge_verdict
from repro.core.row_selector import RowSelector, extract_predicate_program
from repro.faults.errors import UnrecoverableFault, WorkerCrash
from repro.faults.injector import get_fault_injector
from repro.engine.operators.grouping import (
    GroupedKeys,
    aggregate_count,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    group_rows,
)
from repro.engine.operators.sorting import multi_key_order
from repro.engine.relation import Relation
from repro.flash.channels import ChannelMeter
from repro.obs import METRICS
from repro.perf.trace import OpTrace
from repro.sqlir.expr import (
    AggFunc,
    EvalContext,
    Expr,
    Kind,
    ScalarSubquery,
    TypedArray,
    evaluate,
)
from repro.sqlir.plan import (
    Aggregate,
    Filter,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
)
from repro.storage.column import Column
from repro.storage.layout import PAGE_BYTES, FlashLayout
from repro.storage.stringheap import StringHeap
from repro.storage.types import TypeKind

# An 8 KB page of 1-byte values holds 8192 rows, and every wider value
# width divides that evenly — so morsels aligned to 8192 rows start on a
# page boundary for every column of the table.
MORSEL_ALIGN_ROWS = PAGE_BYTES
DEFAULT_MORSEL_ROWS = 8 * MORSEL_ALIGN_ROWS
# The scaling bench (BENCH_morsel_scaling.json) shows 32768-row morsels
# well ahead of 8192 at SF-0.01 — this is the default the CLI entry
# points use where they previously hard-coded 8192.
TUNED_MORSEL_ROWS = 4 * MORSEL_ALIGN_ROWS
# Cap on morsels per fragment: tiny tables otherwise shatter into
# dispatch-dominated crumbs.  Deliberately a constant (a small multiple
# of typical worker counts), NOT a function of n_workers — fault sites
# are named morsel/{table}/{lo}-{hi}, so span boundaries must reproduce
# across worker counts for chaos campaigns to stay deterministic.
MAX_FRAGMENT_MORSELS = 32
# The software selector is not bound by the FPGA's 4-evaluator budget.
HOST_CP_EVALUATORS = 64

WORKER_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class MorselConfig:
    """Streaming knobs for :class:`~repro.engine.executor.Engine`."""

    parallel: bool = True        # off = monolithic execution everywhere
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    n_workers: int = 1
    worker_backend: str = "thread"   # "serial" | "thread" | "process"

    def __post_init__(self):
        if self.worker_backend not in WORKER_BACKENDS:
            raise ValueError(
                f"worker_backend={self.worker_backend!r}; "
                f"choose from {WORKER_BACKENDS}"
            )

    def aligned_rows(self) -> int:
        """``morsel_rows`` rounded up to the page-alignment quantum."""
        return max(
            MORSEL_ALIGN_ROWS,
            -(-self.morsel_rows // MORSEL_ALIGN_ROWS) * MORSEL_ALIGN_ROWS,
        )

    def spans_for(self, nrows: int) -> list[tuple[int, int]]:
        """Morsel spans for a table, clamped to a bounded fan-out.

        When ``nrows`` would shatter into more than
        :data:`MAX_FRAGMENT_MORSELS` spans, the morsel size grows (page
        aligned) until the count fits — big tables keep big, cheap
        morsels instead of paying per-span dispatch overhead.
        """
        rows = self.aligned_rows()
        if nrows > rows * MAX_FRAGMENT_MORSELS:
            per = -(-nrows // MAX_FRAGMENT_MORSELS)
            rows = -(-per // MORSEL_ALIGN_ROWS) * MORSEL_ALIGN_ROWS
        return split_morsels(nrows, rows)


def split_morsels(nrows: int, morsel_rows: int) -> list[tuple[int, int]]:
    """Row spans ``[lo, hi)`` partitioning ``nrows`` into morsels."""
    return [
        (lo, min(lo + morsel_rows, nrows))
        for lo in range(0, nrows, morsel_rows)
    ]


# ---------------------------------------------------------------------------
# Fragment extraction
# ---------------------------------------------------------------------------


@dataclass
class Fragment:
    """A streamable subtree: scan → Filter/Project chain → terminal."""

    scan: Scan
    steps: tuple[Plan, ...]      # Filter/Project nodes, bottom-up order
    terminal: Plan | None        # Aggregate, Sort, or Limit-over-Sort
    kind: str                    # "chain" | "aggregate" | "sort" | "topk"


def extract_fragment(plan: Plan, catalog) -> Fragment | None:
    """Carve the largest streamable fragment rooted at ``plan``.

    Returns None when the root is not streamable (the caller's normal
    dispatch then recurses, and extraction retries on each subtree).
    """
    terminal: Plan | None = None
    kind = "chain"
    chain: Plan = plan
    if isinstance(plan, Limit) and isinstance(plan.child, Sort):
        terminal, kind, chain = plan, "topk", plan.child.child
    elif isinstance(plan, Sort):
        terminal, kind, chain = plan, "sort", plan.child
    elif isinstance(plan, Aggregate):
        terminal, kind, chain = plan, "aggregate", plan.child

    steps: list[Plan] = []
    node = chain
    while isinstance(node, (Filter, Project)):
        exprs = (
            [node.predicate]
            if isinstance(node, Filter)
            else [e for _, e in node.outputs]
        )
        if any(_has_subquery(e) for e in exprs):
            return None
        steps.append(node)
        node = node.child
    if not isinstance(node, Scan):
        return None
    steps.reverse()

    if kind == "aggregate" and not aggregate_merge_verdict(
        terminal, node, tuple(steps), catalog
    ).mergeable:
        # Non-mergeable terminal (AVG / float SUM / COUNT DISTINCT /
        # AQ4xx): refuse the whole fragment here; the Aggregate runs
        # monolithically and extraction retries on its child chain.
        return None
    if terminal is None and not steps:
        return None  # a bare streamed scan saves the host nothing
    return Fragment(
        scan=node, steps=tuple(steps), terminal=terminal, kind=kind
    )


def _has_subquery(expr: Expr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ScalarSubquery):
            return True
        stack.extend(node.children())
    return False


def _needed_scan_columns(frag: Fragment) -> set[str] | None:
    """Scan columns the fragment actually reads (None = all of them).

    Backward dataflow from the fragment's output requirement through the
    step chain: a Project resets the requirement to the refs of its
    (needed) outputs, a Filter adds its predicate's refs.
    """
    req: set[str] | None
    if frag.kind == "aggregate":
        req = set(frag.terminal.keys)
        for spec in frag.terminal.aggregates:
            if spec.expr is not None:
                req |= spec.expr.column_refs()
    else:
        req = None  # chain/sort/topk outputs keep every column
    for step in reversed(frag.steps):
        if isinstance(step, Project):
            new: set[str] = set()
            for name, expr in step.outputs:
                if req is None or name in req:
                    new |= expr.column_refs()
            req = new
        elif req is not None:
            req |= step.predicate.column_refs()
    return req


# ---------------------------------------------------------------------------
# Morsel execution
# ---------------------------------------------------------------------------


def _typed_values(col: Column, values: np.ndarray) -> TypedArray:
    """Lift raw column values into the evaluation domain.

    Mirrors :func:`~repro.engine.relation.typed_array_from_column` but
    for a morsel-sized slice or gather of the column.
    """
    kind = col.ctype.kind
    if kind is TypeKind.CHAR:
        return TypedArray(values, Kind.STR, 0, col.heap)
    if kind is TypeKind.DECIMAL:
        return TypedArray(values.astype(np.int64), Kind.INT, 2)
    if kind is TypeKind.BOOL:
        return TypedArray(values.astype(np.bool_), Kind.BOOL, 0)
    return TypedArray(values.astype(np.int64), Kind.INT, 0)


def _apply_step(step: Plan, rel: Relation) -> Relation:
    ctx = EvalContext(
        columns=rel.columns, nrows=rel.nrows, subquery_executor=None
    )
    if isinstance(step, Filter):
        keep = evaluate(step.predicate, ctx).values.astype(np.bool_)
        return rel.mask(keep)
    return Relation(
        {name: evaluate(expr, ctx) for name, expr in step.outputs}
    )


class _SpanReads:
    """Per-morsel page accounting: which pages of which columns we read."""

    _FULL = None  # sentinel: whole span streamed

    def __init__(self, layout: FlashLayout, table: str, lo: int, hi: int):
        self.layout = layout
        self.table = table
        self.lo = lo
        self.hi = hi
        self._touched: dict[str, np.ndarray | None] = {}

    def full(self, column: str) -> None:
        self._touched[column] = self._FULL

    def rows(self, column: str, rowids: np.ndarray) -> None:
        """Charge the pages holding the given global row ids."""
        if column in self._touched and self._touched[column] is self._FULL:
            return
        ext = self.layout.extent(self.table, column)
        pages = np.unique(rowids // ext.rows_per_page())
        prev = self._touched.get(column)
        self._touched[column] = (
            pages if prev is None else np.union1d(prev, pages)
        )

    def summary(self):
        """(pages_read, pages_total, global page ids) for this span."""
        pages_read: dict[str, int] = {}
        pages_total: dict[str, int] = {}
        ids: list[np.ndarray] = []
        for column, touched in self._touched.items():
            ext = self.layout.extent(self.table, column)
            per_page = ext.rows_per_page()
            span_lo = self.lo // per_page
            span_hi = -(-self.hi // per_page)
            pages = (
                np.arange(span_lo, span_hi, dtype=np.int64)
                if touched is self._FULL
                else touched
            )
            pages_read[column] = len(pages)
            pages_total[column] = span_hi - span_lo
            ids.append(ext.first_page + pages)
        page_ids = (
            np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)
        )
        return pages_read, pages_total, page_ids


@dataclass
class _Partial:
    """One morsel's output plus its I/O accounting."""

    relation: Relation
    pages_read: dict[str, int]
    pages_total: dict[str, int]
    page_ids: np.ndarray
    # Injected per-channel fault stall (seconds); None when fault-free.
    stall_s: np.ndarray | None = None


class SpanRunner:
    """The per-span pipeline, decoupled from the parent Engine.

    Holds exactly the state one morsel needs — table, flash layout,
    fragment, column lists and a tracer — so the same code runs in the
    parent (serial/thread backends) and inside a forked pool worker
    (process backend), where it is rebuilt from the worker's inherited
    catalog.
    """

    def __init__(
        self,
        table,
        layout: FlashLayout,
        fragment: Fragment,
        scan_names: tuple[str, ...],
        base_names: tuple[str, ...],
        tracer,
    ):
        self.table = table
        self.layout = layout
        self.fragment = fragment
        self.scan_names = scan_names
        self.base_names = base_names
        self.tracer = tracer

    @classmethod
    def for_catalog(cls, catalog, layout, fragment: Fragment, tracer):
        table = catalog.table(fragment.scan.table)
        scan_names = (
            fragment.scan.columns
            if fragment.scan.columns is not None
            else tuple(table.column_names)
        )
        needed = _needed_scan_columns(fragment)
        base_names = (
            scan_names
            if needed is None
            else tuple(n for n in scan_names if n in needed)
        )
        return cls(table, layout, fragment, scan_names, base_names, tracer)

    def heap_names(self) -> dict[int, str]:
        """``id(heap) -> column name`` for the scan's base heaps.

        The token map :func:`pack_partial` uses to ship heap references
        (not heap contents) across the process boundary.
        """
        names: dict[int, str] = {}
        for name in self.scan_names:
            heap = self.table.column(name).heap
            if heap is not None:
                # conc: safe — id() is a process-local heap token; only
                # the *name* string crosses the boundary (pack_partial)
                names[id(heap)] = name
        return names

    def run_span_safe(self, span: tuple[int, int]) -> _Partial:
        """Run one morsel with crash injection and bounded re-execution.

        The crash strikes *before* the span does any work (the worker
        died picking the morsel up), so failed attempts charge no page
        reads and re-execution is trivially bit-identical — the span is
        a pure function of its ``[lo, hi)`` range.  Fault decisions are
        addressed by the span's stable site name, never by thread
        scheduling, so campaigns reproduce across worker counts.
        """
        injector = get_fault_injector()
        if not injector.enabled:
            return self._run_span(span)
        lo, hi = span
        site = f"morsel/{self.table.name}/{lo}-{hi}"
        budget = injector.config.retry_budget
        attempt = 0
        while True:
            try:
                injector.check_worker(site, attempt)
                return self._run_span(span)
            except WorkerCrash as crash:
                if attempt >= budget:
                    raise UnrecoverableFault(
                        f"{site} still crashing after {budget} retries",
                        site=site,
                    ) from crash
                attempt += 1
                injector.record_worker_retry(site, attempt)
                self.tracer.instant(
                    "fault.retry", lane="faults", site=site,
                    attempt=attempt,
                )

    def _run_span(self, span: tuple[int, int]) -> _Partial:
        lo, hi = span
        # Each worker thread records into its own ring buffer, so this
        # per-morsel span costs no synchronisation.
        with self.tracer.span("morsel.span", lo=lo, hi=hi) as tspan:
            reads = _SpanReads(self.layout, self.table.name, lo, hi)
            rel, steps_done = self._base_relation(lo, hi, reads)
            for step in self.fragment.steps[steps_done:]:
                rel = _apply_step(step, rel)
            pages_read, pages_total, page_ids = reads.summary()
            injector = get_fault_injector()
            stall = (
                injector.charge_page_reads(page_ids)
                if injector.enabled
                else None
            )
            tspan.set(rows_out=rel.nrows,
                      pages_read=sum(pages_read.values()))
            return _Partial(self._partial(rel), pages_read, pages_total,
                            page_ids, stall)

    def _base_relation(
        self, lo: int, hi: int, reads: _SpanReads
    ) -> tuple[Relation, int]:
        steps = self.fragment.steps
        if steps and isinstance(steps[0], Filter):
            return self._filtered_base(steps[0], lo, hi, reads), 1
        columns = {}
        for name in self.base_names:
            col = self.table.column(name)
            reads.full(name)
            columns[name] = _typed_values(col, col.slice_rows(lo, hi))
        return Relation(columns), 0

    def _filtered_base(
        self, filt: Filter, lo: int, hi: int, reads: _SpanReads
    ) -> Relation:
        """Bottom filter: Row Selector first cut, then page-skip gathers.

        CP columns stream whole (the selector sees every row); every
        other column is gathered at the surviving rows only, so flash
        pages with no survivor are neither read nor charged — the Table
        Reader's page skip, end to end.
        """
        nrows = hi - lo
        scales: dict[str, int] = {}
        excluded: set[str] = set()
        for name in self.scan_names:
            kind = self.table.column(name).ctype.kind
            if kind in (TypeKind.CHAR, TypeKind.BOOL):
                excluded.add(name)
            elif kind is TypeKind.DECIMAL:
                scales[name] = 2
            else:
                scales[name] = 0
        program, leftover = extract_predicate_program(
            filt.predicate,
            n_evaluators=HOST_CP_EVALUATORS,
            string_columns=frozenset(excluded),
            column_scales=scales,
        )

        selector = RowSelector(n_evaluators=HOST_CP_EVALUATORS)
        cp_slices: dict[str, np.ndarray] = {}
        for name in program.columns:
            col = self.table.column(name)
            reads.full(name)
            cp_slices[name] = col.slice_rows(lo, hi)
        local = selector.select(program, cp_slices, nrows).indices()

        if leftover is not None:
            cols = {
                name: self._gather(name, lo, local, cp_slices, reads)
                for name in sorted(leftover.column_refs())
            }
            ctx = EvalContext(
                columns=cols, nrows=len(local), subquery_executor=None
            )
            keep = evaluate(leftover, ctx).values.astype(np.bool_)
            local = local[keep]

        columns = {
            name: self._gather(name, lo, local, cp_slices, reads)
            for name in self.base_names
        }
        return Relation(columns)

    def _gather(
        self,
        name: str,
        lo: int,
        local: np.ndarray,
        cp_slices: dict[str, np.ndarray],
        reads: _SpanReads,
    ) -> TypedArray:
        col = self.table.column(name)
        if name in cp_slices:
            raw = cp_slices[name][local]
        else:
            reads.rows(name, lo + local)
            raw = col.gather_raw(lo + local)
        return _typed_values(col, raw)

    # -- partial reduction ---------------------------------------------------------

    def _partial(self, rel: Relation) -> Relation:
        frag = self.fragment
        if frag.kind == "chain":
            return rel
        if frag.kind == "sort":
            return rel.take(_sort_order(rel, frag.terminal.keys))
        if frag.kind == "topk":
            order = _sort_order(rel, frag.terminal.child.keys)
            return rel.take(order[: frag.terminal.count])
        return _aggregate_partial(rel, frag.terminal)


# ---------------------------------------------------------------------------
# Partial serialization (process backend)
# ---------------------------------------------------------------------------


def pack_partial(partial: _Partial, heap_names: dict[int, str]) -> tuple:
    """Flatten a :class:`_Partial` for the worker→parent pipe.

    Column values pickle as plain arrays (a view serialises only its
    own data, never the mmap behind it).  String heaps do **not**
    travel by content when they are base-column heaps: those become
    ``("col", name)`` tokens the parent resolves against its own
    catalog, so the merged relation carries the parent's heap objects
    exactly as the thread backend would.  Expression-built heaps
    (e.g. substring outputs) are inlined as their code-ordered string
    list and rebuilt verbatim.
    """
    packed_columns = []
    for name, arr in partial.relation.columns.items():
        if arr.heap is None:
            token = None
        else:
            # conc: safe — same-process lookup; the shipped token is
            # the column name, never the id value
            base_name = heap_names.get(id(arr.heap))
            token = (
                ("col", base_name)
                if base_name is not None
                else ("inline", tuple(arr.heap.strings()))
            )
        packed_columns.append(
            (name, np.ascontiguousarray(arr.values), arr.kind,
             arr.scale, token)
        )
    return (
        packed_columns,
        partial.pages_read,
        partial.pages_total,
        partial.page_ids,
        partial.stall_s,
    )


def unpack_partial(packed: tuple, table) -> _Partial:
    """Rebuild a worker's :class:`_Partial` against the parent catalog."""
    packed_columns, pages_read, pages_total, page_ids, stall_s = packed
    columns: dict[str, TypedArray] = {}
    for name, values, kind, scale, token in packed_columns:
        if token is None:
            heap = None
        elif token[0] == "col":
            heap = table.column(token[1]).heap
        else:
            heap = StringHeap()
            for value in token[1]:
                heap.encode(value)
        columns[name] = TypedArray(values, kind, scale, heap)
    return _Partial(
        Relation(columns), pages_read, pages_total, page_ids, stall_s
    )


class MorselExecutor:
    """Runs one fragment morsel-at-a-time and merges the partials."""

    def __init__(self, engine, fragment: Fragment):
        self.engine = engine
        self.config: MorselConfig = engine.morsels
        self.trace = engine.trace
        self.tracer = engine.tracer
        self.fragment = fragment
        self.runner = SpanRunner.for_catalog(
            engine.catalog, engine.flash_layout(), fragment, engine.tracer
        )
        self.table = self.runner.table
        self.layout = self.runner.layout

    # -- driver ----------------------------------------------------------------

    def _fragment_nodes(self) -> list[int]:
        """Plan-node ids the fragment covers (doctor's join key).

        A streamed fragment subsumes several plan nodes into one span,
        so it advertises all of them; empty when the plan was never
        run through ``assign_node_ids``.
        """
        frag = self.fragment
        nodes = [frag.scan, *frag.steps]
        if frag.terminal is not None:
            nodes.append(frag.terminal)
            if frag.kind == "topk":
                nodes.append(frag.terminal.child)  # the Sort under Limit
        ids = [getattr(n, "node_id", None) for n in nodes]
        return sorted(i for i in ids if i is not None)

    def _effective_backend(self, n_spans: int) -> str:
        if self.config.n_workers <= 1 or n_spans < 2:
            return "serial"
        backend = self.config.worker_backend
        if backend == "process":
            from repro.engine import procpool

            if not procpool.process_backend_available():
                procpool.warn_once_no_process_backend()
                return "thread"
        return backend

    def run(self, spans: list[tuple[int, int]]) -> Relation:
        backend = self._effective_backend(len(spans))
        with self.tracer.span(
            "morsel.fragment",
            table=self.table.name,
            kind=self.fragment.kind,
            morsels=len(spans),
            workers=self.config.n_workers,
            backend=backend,
            nodes=self._fragment_nodes(),
        ) as fspan:
            partials = self._execute(spans, backend)
            with self.tracer.span("morsel.merge",
                                  kind=self.fragment.kind):
                result = self._merge(partials)
            self._record(partials, result)
            fspan.set(rows_out=result.nrows,
                      bytes_out=result.nbytes())
        return result

    def _execute(
        self, spans: list[tuple[int, int]], backend: str
    ) -> list[_Partial]:
        if backend == "process":
            partials = self._execute_process(spans)
            if partials is not None:
                return partials
            backend = "thread"  # pool unavailable: degrade gracefully
        if backend == "thread":
            from repro.engine.procpool import get_thread_pool

            pool = get_thread_pool(self.config.n_workers)
            return list(pool.map(self.runner.run_span_safe, spans))
        return [self.runner.run_span_safe(span) for span in spans]

    def _execute_process(
        self, spans: list[tuple[int, int]]
    ) -> list[_Partial] | None:
        """Dispatch span batches to the forked pool; None = no pool.

        Replies repatriate each worker's span records and fault deltas
        before any fault is re-raised, so counters and traces match the
        thread backend (where every submitted span still runs even
        when one raises).  Batches lost to a dead worker re-run inline
        — spans are pure functions of their range.
        """
        from repro.engine import procpool

        pool = procpool.get_process_pool(
            self.engine.catalog, self.config.n_workers
        )
        if pool is None:
            return None
        batches = procpool.make_batches(spans, pool.n_workers)
        requests = [("morsel", self.fragment, batch) for batch in batches]
        try:
            replies = pool.run(requests, procpool.batch_opts(self.tracer))
        except procpool.PoolBroken:
            return None
        injector = get_fault_injector()
        partials: list[_Partial] = []
        failure = None
        for reply, batch in zip(replies, batches):
            if reply.status == "lost":
                partials.extend(
                    self.runner.run_span_safe(span) for span in batch
                )
                continue
            procpool.absorb_obs(reply, self.tracer, injector)
            if reply.status == "done":
                partials.extend(
                    unpack_partial(p, self.table) for p in reply.result
                )
            elif reply.status == "fault":
                if failure is None:
                    failure = reply
            else:  # "err": a real bug in the worker, not an injection
                raise RuntimeError(
                    f"morsel worker failed:\n{reply.message}"
                )
        if failure is not None:
            if failure.degraded:
                from repro.obs.server import set_degraded

                info = dict(failure.degraded)
                set_degraded(info.pop("reason", "worker fault"), **info)
            raise UnrecoverableFault(failure.message, site=failure.site)
        return partials

    # -- merge ---------------------------------------------------------------------

    def _merge(self, partials: list[_Partial]) -> Relation:
        frag = self.fragment
        merged = _concat_relations([p.relation for p in partials])
        if frag.kind == "chain":
            return merged
        if frag.kind == "sort":
            return merged.take(_sort_order(merged, frag.terminal.keys))
        if frag.kind == "topk":
            order = _sort_order(merged, frag.terminal.child.keys)
            return merged.take(order[: frag.terminal.count])
        return self._merge_aggregate(merged, frag.terminal)

    def _merge_aggregate(
        self, parts: Relation, plan: Aggregate
    ) -> Relation:
        """Re-reduce concatenated per-morsel group partials.

        Re-grouping the concatenated key rows reproduces the monolithic
        group order exactly: first-appearance numbering composes under
        concatenation in morsel (= row) order.
        """
        key_arrays = [parts.column(k) for k in plan.keys]
        groups = group_rows([k.values for k in key_arrays])
        if not plan.keys:
            groups = GroupedKeys(
                group_of_row=np.zeros(parts.nrows, dtype=np.int64),
                representative=np.zeros(1, dtype=np.int64),
            )
        columns: dict[str, TypedArray] = {}
        for name, key in zip(plan.keys, key_arrays):
            columns[name] = TypedArray(
                key.values[groups.representative],
                key.kind,
                key.scale,
                key.heap,
            )
        for spec in plan.aggregates:
            arr = parts.column(spec.name)
            ints = arr.values.astype(np.int64)
            if spec.func is AggFunc.MIN:
                merged = aggregate_min(ints, groups)
            elif spec.func is AggFunc.MAX:
                merged = aggregate_max(ints, groups)
            else:  # COUNT and SUM partials both add
                merged = aggregate_sum(ints, groups)
            columns[spec.name] = TypedArray(merged, arr.kind, arr.scale)
        out = Relation(columns)
        if plan.having is not None:
            ctx = EvalContext(
                columns=out.columns,
                nrows=out.nrows,
                subquery_executor=self.engine.scalar,
            )
            keep = evaluate(plan.having, ctx).values.astype(np.bool_)
            out = out.mask(keep)
        return out

    # -- trace -----------------------------------------------------------------------

    def _record(self, partials: list[_Partial], result: Relation) -> None:
        table = self.table.name
        pages_read: dict[str, int] = {}
        pages_total: dict[str, int] = {}
        meter = ChannelMeter()
        for p in partials:
            for name, n in p.pages_read.items():
                pages_read[name] = pages_read.get(name, 0) + n
            for name, n in p.pages_total.items():
                pages_total[name] = pages_total.get(name, 0) + n
            meter.record_pages(p.page_ids)
            meter.record_stalls(p.stall_s)
        injector = get_fault_injector()
        if injector.enabled:
            # Whole-channel stalls hit every stream crossing the stripe.
            meter.record_stalls(
                injector.channel_stall_seconds(meter.n_channels)
            )
            fault_stall = meter.stall_marginal_seconds()
            if fault_stall:
                self.trace.fault_stall_s += fault_stall
        bytes_read = 0
        for name in pages_read:
            self.trace.record_flash_pages(
                table, name, pages_read[name], pages_total[name],
                PAGE_BYTES,
            )
            bytes_read += pages_read[name] * PAGE_BYTES
        self.trace.record_channel_pages(meter.pages_read)
        n_read = sum(pages_read.values())
        n_total = sum(pages_total.values())
        METRICS.counter(
            "flash.pages_read", "column pages actually fetched"
        ).inc(n_read)
        METRICS.counter(
            "flash.pages_skipped", "fully-masked pages never fetched"
        ).inc(n_total - n_read)
        METRICS.counter(
            "morsel.rows_streamed", "base rows fed through morsels"
        ).inc(self.table.nrows)
        METRICS.histogram(
            "morsel.rows_out", "rows surviving one fragment"
        ).observe(result.nrows)
        self.trace.record_op(
            OpTrace(
                "scan",
                rows_in=self.table.nrows,
                rows_out=result.nrows,
                bytes_in=bytes_read,
                bytes_out=result.nbytes(),
                detail=(
                    f"{table},morsels={len(partials)},"
                    f"workers={self.config.n_workers},{self.fragment.kind}"
                ),
            )
        )
        peak_partial = max(
            (p.relation.nbytes() for p in partials), default=0
        )
        self.trace.observe_host_bytes(
            result.nbytes()
            + peak_partial * max(1, self.config.n_workers)
        )


def _sort_order(rel: Relation, keys) -> np.ndarray:
    return multi_key_order(
        [(rel.column(k.column), k.ascending) for k in keys]
    )


def _aggregate_partial(child: Relation, plan: Aggregate) -> Relation:
    """One morsel's pre-reduction: key rows + partial accumulators."""
    ctx = EvalContext(
        columns=child.columns, nrows=child.nrows, subquery_executor=None
    )
    key_arrays = [child.column(k) for k in plan.keys]
    groups = group_rows([k.values for k in key_arrays])
    if not plan.keys:
        groups = GroupedKeys(
            group_of_row=np.zeros(child.nrows, dtype=np.int64),
            representative=np.zeros(1, dtype=np.int64),
        )
    columns: dict[str, TypedArray] = {}
    for name, key in zip(plan.keys, key_arrays):
        columns[name] = TypedArray(
            key.values[groups.representative],
            key.kind,
            key.scale,
            key.heap,
        )
    for spec in plan.aggregates:
        columns[spec.name] = _partial_one(spec, ctx, groups)
    return Relation(columns)


def _partial_one(spec, ctx: EvalContext, groups: GroupedKeys) -> TypedArray:
    if spec.func is AggFunc.COUNT and spec.expr is None:
        return TypedArray(aggregate_count(groups), Kind.INT, 0)
    values = evaluate(spec.expr, ctx)
    if spec.func is AggFunc.COUNT:
        return TypedArray(aggregate_count(groups), Kind.INT, 0)
    ints = values.values.astype(np.int64)
    if spec.func is AggFunc.SUM:
        return TypedArray(
            aggregate_sum(ints, groups), values.kind, values.scale
        )
    if spec.func is AggFunc.MIN:
        return TypedArray(
            aggregate_min(ints, groups), values.kind, values.scale
        )
    if spec.func is AggFunc.MAX:
        return TypedArray(
            aggregate_max(ints, groups), values.kind, values.scale
        )
    raise NotImplementedError(spec.func)


def _concat_relations(parts: list[Relation]) -> Relation:
    head = parts[0]
    columns: dict[str, TypedArray] = {}
    for name in head.names:
        arrays = [p.column(name) for p in parts]
        proto = arrays[0]
        columns[name] = TypedArray(
            np.concatenate([a.values for a in arrays]),
            proto.kind,
            proto.scale,
            proto.heap,
        )
    return Relation(columns)
