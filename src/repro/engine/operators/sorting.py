"""Multi-key sorting with per-key direction, string-aware."""

from __future__ import annotations

import numpy as np

from repro.sqlir.expr import Kind, TypedArray


def _orderable(arr: TypedArray) -> np.ndarray:
    """An integer array whose ascending order equals the logical order."""
    if arr.kind is Kind.STR:
        if arr.heap is None:
            raise ValueError("string sort key lost its heap")
        # Rank heap codes by their string value; map codes through ranks.
        uniques = np.array(arr.heap.strings())
        rank_of_code = np.argsort(np.argsort(uniques, kind="stable"))
        return rank_of_code[arr.values].astype(np.int64)
    if arr.kind is Kind.FLOAT:
        # IEEE-754 total order: negatives flip all bits, positives are
        # already ordered; expressed in signed space.
        bits = arr.values.astype(np.float64).view(np.int64)
        unsigned = bits.view(np.uint64)
        flipped = (~unsigned) ^ np.uint64(1 << 63)
        return np.where(bits < 0, flipped.view(np.int64), bits)
    return arr.values.astype(np.int64)


def multi_key_order(
    keys: list[tuple[TypedArray, bool]],
) -> np.ndarray:
    """Stable row order for (column, ascending) sort keys, major first.

    >>> import numpy as np
    >>> a = TypedArray(np.array([2, 1, 2]))
    >>> b = TypedArray(np.array([5, 9, 1]))
    >>> multi_key_order([(a, True), (b, False)]).tolist()
    [1, 0, 2]
    """
    if not keys:
        raise ValueError("need at least one sort key")
    columns = []
    for arr, ascending in keys:
        ordered = _orderable(arr)
        columns.append(ordered if ascending else -ordered)
    # lexsort sorts by the *last* key as primary; we list minor-to-major.
    return np.lexsort(tuple(reversed(columns)))
