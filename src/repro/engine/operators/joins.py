"""Equi-join kernels.

The software baseline joins the way MonetDB does for unsorted inputs:
sort one side, binary-search the other, expand duplicate runs.  The same
kernel yields inner pair lists; semi/anti reduce the pair list (or, when
no residual predicate is involved, short-circuit to a membership test).
"""

from __future__ import annotations

import numpy as np


def inner_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left_row, right_row) pairs of an inner equi-join.

    Pairs are produced in left-row-major order, so downstream gathers
    keep the left relation's row order — like MonetDB's fetch joins.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]

    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo

    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    left_out = np.repeat(np.arange(len(left_keys), dtype=np.int64), counts)
    # For each left row, enumerate its run [lo, hi) in the sorted right.
    starts = np.repeat(lo, counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_out = order[starts + within]
    return left_out, right_out


def semi_join_mask(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> np.ndarray:
    """Boolean mask of left rows having at least one right match."""
    if len(right_keys) == 0:
        return np.zeros(len(left_keys), dtype=np.bool_)
    return np.isin(left_keys, right_keys)
