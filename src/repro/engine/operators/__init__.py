"""Vectorised operator kernels used by the software executor."""

from repro.engine.operators.joins import (
    inner_join_indices,
    semi_join_mask,
)
from repro.engine.operators.grouping import group_rows, GroupedKeys
from repro.engine.operators.sorting import multi_key_order

__all__ = [
    "inner_join_indices",
    "semi_join_mask",
    "group_rows",
    "GroupedKeys",
    "multi_key_order",
]
