"""Group-by kernels: factorise key tuples into dense group numbers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class GroupedKeys:
    """Dense group numbering of the input rows.

    ``group_of_row[i]`` is the group number of input row ``i``;
    ``representative[g]`` is the first input row of group ``g`` (used to
    read back the key values); groups are numbered in first-appearance
    order, matching the hardware accelerator's "assign group numbers in
    increasing order" rule (Sec. VI-C).
    """

    group_of_row: np.ndarray
    representative: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.representative)


def group_rows(key_columns: list[np.ndarray]) -> GroupedKeys:
    """Factorise one or more equal-length key columns.

    With no key columns, all rows fall into a single global group
    (SQL's implicit group for aggregate-only queries).
    """
    if not key_columns:
        n = 0
        return GroupedKeys(
            group_of_row=np.zeros(n, dtype=np.int64),
            representative=np.zeros(1, dtype=np.int64),
        )

    n = len(key_columns[0])
    if n == 0:
        return GroupedKeys(
            group_of_row=np.empty(0, dtype=np.int64),
            representative=np.empty(0, dtype=np.int64),
        )

    # Lexicographic factorisation: sort rows by the key tuple, mark
    # boundaries, then renumber groups by first appearance.
    order = np.lexsort(tuple(reversed([np.asarray(k) for k in key_columns])))
    boundaries = np.zeros(n, dtype=np.bool_)
    boundaries[0] = True
    for key in key_columns:
        key = np.asarray(key)
        boundaries[1:] |= key[order][1:] != key[order][:-1]
    sorted_gid = np.cumsum(boundaries) - 1

    gid_by_row = np.empty(n, dtype=np.int64)
    gid_by_row[order] = sorted_gid

    # Renumber so group ids follow first appearance in input order.
    first_seen = np.full(int(sorted_gid[-1]) + 1, n, dtype=np.int64)
    np.minimum.at(first_seen, gid_by_row, np.arange(n, dtype=np.int64))
    appearance_rank = np.argsort(np.argsort(first_seen, kind="stable"))
    group_of_row = appearance_rank[gid_by_row]

    n_groups = len(first_seen)
    representative = np.empty(n_groups, dtype=np.int64)
    representative[appearance_rank] = first_seen
    return GroupedKeys(group_of_row, representative)


def aggregate_sum(values: np.ndarray, groups: GroupedKeys) -> np.ndarray:
    out = np.zeros(groups.n_groups, dtype=values.dtype)
    np.add.at(out, groups.group_of_row, values)
    return out


def aggregate_count(groups: GroupedKeys) -> np.ndarray:
    out = np.zeros(groups.n_groups, dtype=np.int64)
    np.add.at(out, groups.group_of_row, 1)
    return out


def aggregate_min(values: np.ndarray, groups: GroupedKeys) -> np.ndarray:
    out = np.full(groups.n_groups, _identity_max(values.dtype))
    np.minimum.at(out, groups.group_of_row, values)
    return out


def aggregate_max(values: np.ndarray, groups: GroupedKeys) -> np.ndarray:
    out = np.full(groups.n_groups, _identity_min(values.dtype))
    np.maximum.at(out, groups.group_of_row, values)
    return out


def aggregate_count_distinct(
    values: np.ndarray, groups: GroupedKeys
) -> np.ndarray:
    """Distinct values per group (host-only; the Swissknife lacks it)."""
    out = np.zeros(groups.n_groups, dtype=np.int64)
    pairs = np.stack([groups.group_of_row, values.astype(np.int64)])
    unique_pairs = np.unique(pairs, axis=1)
    np.add.at(out, unique_pairs[0], 1)
    return out


def _identity_max(dtype):
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _identity_min(dtype):
    if np.issubdtype(dtype, np.floating):
        return -np.inf
    return np.iinfo(dtype).min
