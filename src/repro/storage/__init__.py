"""MonetDB-style columnar storage substrate.

A relational table is a collection of typed column files ("BATs"), each a
dense array in ascending row order.  Rows are addressed by an *implicit*
RowID (the array index), which is never materialised on disk.  Strings
live in a per-column string heap and the column file stores fixed-width
codes into the heap — the layout AQUOMAN's regex accelerator and
suspension rules key on.

For every foreign-key column the catalog materialises an extra RowID
column (a MonetDB "join index") pointing at the referenced table's rows;
AQUOMAN exploits these to skip joins entirely when a primary key side is
unfiltered (Sec. VI-D of the paper).
"""

from repro.storage.types import (
    BOOL,
    CHAR,
    DATE,
    DECIMAL,
    FLOAT,
    INT32,
    INT64,
    ColumnType,
    TypeKind,
    date_to_days,
    days_to_date,
    decimal_to_int,
    int_to_decimal,
)
from repro.storage.stringheap import StringHeap
from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.layout import FlashLayout, ColumnExtent
from repro.storage.io import load_catalog, save_catalog

__all__ = [
    "TypeKind",
    "ColumnType",
    "INT32",
    "INT64",
    "FLOAT",
    "DECIMAL",
    "DATE",
    "CHAR",
    "BOOL",
    "date_to_days",
    "days_to_date",
    "decimal_to_int",
    "int_to_decimal",
    "StringHeap",
    "Column",
    "Table",
    "Catalog",
    "ForeignKey",
    "FlashLayout",
    "ColumnExtent",
    "save_catalog",
    "load_catalog",
]
