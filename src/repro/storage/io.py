"""On-disk persistence: the column-file format AQUOMAN reads.

MonetDB stores each column as its own file plus a string-heap file for
variable-width columns (Sec. IV: "a relational table is stored as a
collection of column files").  This module writes a catalog out in that
shape — one raw binary file per column, one NUL-separated heap file per
string column, one JSON manifest for schema/keys — and loads it back.

Round-tripping through disk is exact: values, heaps, key metadata and
the materialised FK join indices all survive.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.obs import METRICS, get_tracer
from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.column import Column
from repro.storage.stringheap import StringHeap
from repro.storage.table import Table
from repro.storage.types import (
    BOOL,
    CHAR,
    DATE,
    DECIMAL,
    FLOAT,
    INT32,
    INT64,
    ColumnType,
)

MANIFEST_NAME = "catalog.json"


def _load_column_values(
    path: Path, dtype: np.dtype, mmap: bool
) -> np.ndarray:
    """Load one column file without a redundant copy.

    The on-disk size is validated against the dtype before mapping so a
    truncated file raises the same "manifest says" error the eager path
    produced (np.memmap of a short file would otherwise fail with an
    unrelated message — or worse, silently round down).
    """
    itemsize = np.dtype(dtype).itemsize
    nvalues = path.stat().st_size // itemsize
    if nvalues == 0:
        return np.empty(0, dtype=dtype)
    if mmap:
        return np.memmap(path, dtype=dtype, mode="r", shape=(nvalues,))
    return np.fromfile(path, dtype=dtype)

_TYPES_BY_NAME: dict[str, ColumnType] = {
    "int32": INT32,
    "int64": INT64,
    "decimal": DECIMAL,
    "date": DATE,
    "char": CHAR,
    "bool": BOOL,
    "float": FLOAT,
}


def save_catalog(catalog: Catalog, directory: str | Path) -> Path:
    """Write every column file, heap file and the manifest.

    Returns the manifest path.  Layout::

        <dir>/catalog.json
        <dir>/<table>/<column>.bin       raw values, native dtype
        <dir>/<table>/<column>.heap      NUL-separated unique strings
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    tracer = get_tracer()
    bytes_written = 0
    manifest: dict = {
        "scale_factor": catalog.scale_factor,
        "seed": catalog.seed,
        "constant_tables": sorted(catalog.constant_tables),
        "primary_keys": dict(catalog.primary_keys),
        "foreign_keys": [
            [fk.table, fk.column, fk.ref_table, fk.ref_column]
            for fk in catalog.foreign_keys
        ],
        "tables": {},
    }

    for table_name in catalog.table_names():
        table = catalog.table(table_name)
        table_dir = root / table_name
        table_dir.mkdir(exist_ok=True)
        columns_meta = []
        with tracer.span("io.save_table", table=table_name):
            for column in table.columns:
                raw = np.ascontiguousarray(column.values).tobytes()
                (table_dir / f"{column.name}.bin").write_bytes(raw)
                bytes_written += len(raw)
                if column.heap is not None:
                    payload = "\x00".join(column.heap.strings())
                    (table_dir / f"{column.name}.heap").write_bytes(
                        payload.encode()
                    )
                    bytes_written += len(payload)
                columns_meta.append(
                    {
                        "name": column.name,
                        "type": column.ctype.kind.value,
                        "nrows": column.nrows,
                    }
                )
        manifest["tables"][table_name] = columns_meta

    METRICS.counter(
        "io.bytes_written", "column-file bytes persisted"
    ).inc(bytes_written)
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_catalog(directory: str | Path, *, mmap: bool = True) -> Catalog:
    """Load a catalog previously written by :func:`save_catalog`.

    With ``mmap=True`` (the default) column files are mapped read-only
    with :func:`np.memmap`, so loading is O(#columns) and a column page
    is only faulted in when something actually reads it — this is what
    lets the morsel executor's page-skip path avoid ever touching
    fully-masked pages.  ``mmap=False`` reads each file eagerly with
    one :func:`np.fromfile` copy (no intermediate ``bytes`` object).

    Foreign keys are restored from the manifest; their join-index
    columns were persisted like any other column, so they are *not*
    recomputed (add_foreign_key would duplicate them) — the manifest's
    edge list is attached directly.
    """
    root = Path(directory)
    manifest = json.loads((root / MANIFEST_NAME).read_text())

    tracer = get_tracer()
    bytes_mapped = 0
    catalog = Catalog()
    catalog.scale_factor = manifest["scale_factor"]
    catalog.seed = manifest["seed"]
    catalog.constant_tables = set(manifest["constant_tables"])

    for table_name, columns_meta in manifest["tables"].items():
        table_dir = root / table_name
        columns = []
        with tracer.span("io.load_table", table=table_name, mmap=mmap):
            for meta in columns_meta:
                ctype = _TYPES_BY_NAME[meta["type"]]
                raw = _load_column_values(
                    table_dir / f"{meta['name']}.bin", ctype.dtype, mmap
                )
                if len(raw) != meta["nrows"]:
                    raise ValueError(
                        f"{table_name}.{meta['name']}: file holds "
                        f"{len(raw)} values, manifest says {meta['nrows']}"
                    )
                bytes_mapped += raw.nbytes
                heap = None
                if ctype.is_string:
                    heap = StringHeap()
                    payload = (
                        table_dir / f"{meta['name']}.heap"
                    ).read_bytes()
                    if payload:
                        for value in payload.decode().split("\x00"):
                            heap.encode(value)
                column = Column(meta["name"], ctype, raw, heap)
                if mmap:
                    column.source_path = table_dir / f"{meta['name']}.bin"
                columns.append(column)
        primary_key = manifest["primary_keys"].get(table_name)
        catalog.add_table(Table(table_name, columns), primary_key)

    METRICS.counter(
        "io.bytes_loaded", "column-file bytes loaded or mapped"
    ).inc(bytes_mapped)

    for table, column, ref_table, ref_column in manifest["foreign_keys"]:
        catalog.foreign_keys.append(
            ForeignKey(table, column, ref_table, ref_column)
        )
    return catalog


def reopen_mapped_columns(catalog: Catalog) -> int:
    """Re-open every disk-backed column mapping by path, in place.

    A forked process-pool worker inherits the parent's memmaps; the
    pages are already shared through the OS page cache, but the file
    descriptors behind them belong to the parent.  Re-mapping by
    ``source_path`` gives the worker its own descriptors over the same
    cached pages — still zero-copy, no pickled column data.  Columns
    without a recorded path (in-memory catalogs, derived columns) are
    left untouched.  Returns the number of columns re-opened.
    """
    reopened = 0
    for table_name in catalog.table_names():
        for column in catalog.table(table_name).columns:
            path = column.source_path
            if path is None or not column.is_mapped:
                continue
            column.values = np.asarray(
                np.memmap(
                    path,
                    dtype=column.ctype.dtype,
                    mode="r",
                    shape=(column.nrows,),
                )
            )
            reopened += 1
    return reopened
