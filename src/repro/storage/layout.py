"""On-flash layout of column files.

AQUOMAN reads tables as *Row Vectors* — 32 consecutive column values —
fetched from 8 KB flash pages.  The layout maps every column file to a
contiguous extent of physical pages so that both the host I/O path and
the Table Reader can translate (table, column, row-vector id) into the
physical page ids they must request from the flash controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.util.units import KB

PAGE_BYTES = 8 * KB
ROW_VECTOR_SIZE = 32


@dataclass(frozen=True)
class ColumnExtent:
    """The physical pages occupied by one column file."""

    table: str
    column: str
    first_page: int
    n_pages: int
    value_width: int
    nrows: int

    @property
    def last_page(self) -> int:
        return self.first_page + self.n_pages - 1

    def rows_per_page(self) -> int:
        return PAGE_BYTES // self.value_width

    def pages_for_rows(self, first_row: int, n_rows: int) -> range:
        """Physical page ids covering rows [first_row, first_row + n_rows)."""
        if n_rows <= 0:
            return range(0)
        per_page = self.rows_per_page()
        lo = first_row // per_page
        hi = (first_row + n_rows - 1) // per_page
        return range(self.first_page + lo, self.first_page + hi + 1)

    def page_for_row_vector(self, row_vector_id: int) -> int:
        """Physical page holding the given 32-row vector's first value."""
        per_page = self.rows_per_page()
        return self.first_page + (row_vector_id * ROW_VECTOR_SIZE) // per_page


class FlashLayout:
    """Assignment of every column file in a catalog to flash pages."""

    def __init__(self, catalog: Catalog):
        self._extents: dict[tuple[str, str], ColumnExtent] = {}
        next_page = 0
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            for col in table.columns:
                n_pages = max(1, -(-col.nbytes // PAGE_BYTES))
                extent = ColumnExtent(
                    table=table_name,
                    column=col.name,
                    first_page=next_page,
                    n_pages=n_pages,
                    value_width=col.ctype.width,
                    nrows=col.nrows,
                )
                self._extents[(table_name, col.name)] = extent
                next_page += n_pages
        self.total_pages = next_page

    def extent(self, table: str, column: str) -> ColumnExtent:
        try:
            return self._extents[(table, column)]
        except KeyError:
            raise KeyError(f"no extent for {table}.{column}") from None

    def extents(self) -> list[ColumnExtent]:
        return list(self._extents.values())

    def table_pages(self, table: Table) -> int:
        """Total pages occupied by a table's column files."""
        return sum(
            self._extents[(table.name, c.name)].n_pages for c in table.columns
        )

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_BYTES

    def __repr__(self) -> str:
        return f"FlashLayout(pages={self.total_pages})"
