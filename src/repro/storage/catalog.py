"""Database catalog: tables, keys, and materialised join indices.

MonetDB internally represents primary keys as RowIDs and, for every
foreign-key column, materialises an additional column of RowIDs referring
to the referenced table's rows (Sec. VI-D).  AQUOMAN exploits these join
indices to avoid loading join keys into its DRAM when the primary-key
side of a join is unfiltered.

The catalog builds those ``<column>@rowid`` join-index columns at load
time, exactly as MonetDB does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.types import INT64


JOIN_INDEX_SUFFIX = "@rowid"


def join_index_name(fk_column: str) -> str:
    """Name of the materialised join-index column for a foreign key."""
    return fk_column + JOIN_INDEX_SUFFIX


@dataclass(frozen=True)
class ForeignKey:
    """A declared foreign-key edge between two tables."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __repr__(self) -> str:
        return (
            f"ForeignKey({self.table}.{self.column} -> "
            f"{self.ref_table}.{self.ref_column})"
        )


@dataclass
class Catalog:
    """A named set of tables plus key metadata."""

    tables: dict[str, Table] = field(default_factory=dict)
    primary_keys: dict[str, str] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    # Provenance for synthetic datasets (set by dbgen; drives trace scaling).
    scale_factor: float = 1.0
    seed: int = 0
    # Tables whose cardinality does not grow with the scale factor
    # (their string heaps never outgrow caches when simulating scale).
    constant_tables: set[str] = field(default_factory=set)

    # -- construction -----------------------------------------------------------

    def add_table(self, table: Table, primary_key: str | None = None) -> None:
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        if primary_key is not None:
            if not table.has_column(primary_key):
                raise KeyError(
                    f"primary key {primary_key!r} not in table {table.name!r}"
                )
            self.primary_keys[table.name] = primary_key

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Declare a FK edge and materialise its join-index column."""
        referencing = self.table(fk.table)
        referenced = self.table(fk.ref_table)
        pk_values = referenced.column(fk.ref_column).values
        fk_values = referencing.column(fk.column).values
        rowids = _build_join_index(fk_values, pk_values)
        index_col = Column(join_index_name(fk.column), INT64, rowids)
        self.tables[fk.table] = referencing.with_column(index_col)
        self.foreign_keys.append(fk)

    # -- access ------------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r}; catalog has {sorted(self.tables)}"
            ) from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def primary_key(self, table: str) -> str | None:
        return self.primary_keys.get(table)

    def foreign_key_for(self, table: str, column: str) -> ForeignKey | None:
        for fk in self.foreign_keys:
            if fk.table == table and fk.column == column:
                return fk
        return None

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self.tables.values())

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names()})"


def _build_join_index(
    fk_values: np.ndarray, pk_values: np.ndarray
) -> np.ndarray:
    """RowID in the referenced table for each foreign-key value.

    Raises if any FK value has no matching primary key (referential
    integrity is a TPC-H invariant we rely on downstream).
    """
    order = np.argsort(pk_values, kind="stable")
    sorted_pk = pk_values[order]
    pos = np.searchsorted(sorted_pk, fk_values)
    pos = np.clip(pos, 0, len(sorted_pk) - 1)
    matched = sorted_pk[pos] == fk_values
    if not matched.all():
        missing = np.asarray(fk_values)[~matched][:5]
        raise ValueError(f"dangling foreign keys, e.g. {missing.tolist()}")
    return order[pos].astype(np.int64)
