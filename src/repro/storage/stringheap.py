"""Dictionary-encoded string heap.

MonetDB stores variable-length strings in a per-column heap file; the
column file itself holds fixed-width offsets.  We model the heap as a
dictionary of unique strings: the column stores 32-bit codes, the heap
stores each distinct string once.

Two heap properties drive AQUOMAN behaviour:

- ``heap_bytes`` — total unique-string payload.  The regex accelerator has
  a 1 MB cache; columns whose heap exceeds it force the query back to the
  host (suspension condition 2, Sec. VI-E).
- small-domain columns (country names, ship modes) fit trivially and can
  be pre-evaluated to a one-bit column at line rate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class StringHeap:
    """An append-only dictionary of unique strings with stable codes."""

    def __init__(self) -> None:
        self._strings: list[str] = []
        self._codes: dict[str, int] = {}
        self._payload_bytes = 0

    @classmethod
    def from_values(cls, values: Iterable[str]) -> tuple["StringHeap", np.ndarray]:
        """Build a heap from a value sequence; return (heap, code array)."""
        heap = cls()
        codes = heap.encode_many(values)
        return heap, codes

    # -- encoding ------------------------------------------------------------

    def encode(self, value: str) -> int:
        """Return the code for ``value``, interning it if new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._strings)
            self._codes[value] = code
            self._strings.append(value)
            self._payload_bytes += len(value.encode()) + 1  # NUL-terminated
        return code

    def encode_many(self, values: Iterable[str]) -> np.ndarray:
        return np.fromiter(
            (self.encode(v) for v in values), dtype=np.int32, count=-1
        )

    def lookup(self, value: str) -> int | None:
        """Code for an existing string, or None (no interning)."""
        return self._codes.get(value)

    # -- decoding ------------------------------------------------------------

    def decode(self, code: int) -> str:
        return self._strings[code]

    def decode_many(self, codes: Sequence[int] | np.ndarray) -> list[str]:
        strings = self._strings
        return [strings[int(c)] for c in codes]

    # -- properties ----------------------------------------------------------

    @property
    def unique_count(self) -> int:
        return len(self._strings)

    @property
    def heap_bytes(self) -> int:
        """Unique-string payload in bytes (what the 1 MB regex cache holds)."""
        return self._payload_bytes

    def strings(self) -> list[str]:
        """All unique strings in code order (a copy)."""
        return list(self._strings)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def __repr__(self) -> str:
        return f"StringHeap(unique={self.unique_count}, bytes={self._payload_bytes})"
