"""A single column file (MonetDB BAT tail).

A column is a dense, typed array in ascending row order, optionally
backed by a string heap.  Column equality and slicing operate on the raw
integer representation; helpers decode to logical Python values.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.storage.stringheap import StringHeap
from repro.storage.types import (
    CHAR,
    ColumnType,
    TypeKind,
    date_to_days,
    decimal_to_int,
)


class Column:
    """Typed, named column of fixed-width integer values."""

    __slots__ = ("name", "ctype", "values", "heap", "source_path")

    def __init__(
        self,
        name: str,
        ctype: ColumnType,
        values: np.ndarray,
        heap: StringHeap | None = None,
    ):
        if ctype.is_string and heap is None:
            raise ValueError(f"string column {name!r} requires a heap")
        if not ctype.is_string and heap is not None:
            raise ValueError(f"non-string column {name!r} cannot carry a heap")
        self.name = name
        self.ctype = ctype
        self.values = np.asarray(values, dtype=ctype.dtype)
        self.heap = heap
        # Set by load_catalog on mmap-backed columns: the column file's
        # path, which lets a forked pool worker re-open the mapping in
        # its own process (reopen_mapped_columns).  None for in-memory
        # and derived columns.
        self.source_path = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def strings(cls, name: str, values: Iterable[str]) -> "Column":
        """Build a CHAR column, interning values into a fresh heap."""
        heap, codes = StringHeap.from_values(values)
        return cls(name, CHAR, codes, heap)

    @classmethod
    def from_logical(
        cls, name: str, ctype: ColumnType, values: Sequence
    ) -> "Column":
        """Build a column from logical Python values (dates, floats, strs)."""
        if ctype.is_string:
            return cls.strings(name, values)
        if ctype.kind is TypeKind.DECIMAL:
            raw = np.fromiter(
                (decimal_to_int(v) for v in values), dtype=np.int64
            )
        elif ctype.kind is TypeKind.DATE:
            raw = np.fromiter(
                (date_to_days(v) for v in values), dtype=np.int32
            )
        else:
            raw = np.asarray(values, dtype=ctype.dtype)
        return cls(name, ctype, raw)

    # -- views ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self.values)

    @property
    def nbytes(self) -> int:
        """On-flash size of the column file (excluding any string heap)."""
        return self.nrows * self.ctype.width

    @property
    def heap_bytes(self) -> int:
        return self.heap.heap_bytes if self.heap is not None else 0

    @property
    def is_mapped(self) -> bool:
        """True when the values live in an mmap'd column file.

        The constructor's ``np.asarray`` returns a plain-ndarray *view*
        of a memmap (same pages, lazily faulted), so the mapping is
        found by walking the ``base`` chain, not by subclass.
        """
        arr = self.values
        while arr is not None:
            if isinstance(arr, np.memmap):
                return True
            arr = getattr(arr, "base", None)
        return False

    def slice_rows(self, lo: int, hi: int) -> np.ndarray:
        """Raw values for rows ``[lo, hi)`` — a view, never a copy.

        On an mmap-backed column only the pages overlapping the slice
        are faulted in, so a morsel-sized read costs morsel-sized I/O.
        """
        return self.values[lo:hi]

    def gather_raw(self, row_ids: np.ndarray) -> np.ndarray:
        """Raw values at the given rows (fancy-indexed copy).

        On an mmap-backed column fancy indexing faults in only the
        pages holding the requested rows — fully-masked pages between
        them are never touched.  This is the physical half of the Table
        Reader's page skip; the accounting half lives in perf/trace.py.
        """
        return self.values[row_ids]

    def take(self, row_ids: np.ndarray) -> "Column":
        """Positional gather: a new column of the given rows, in order."""
        return Column(self.name, self.ctype, self.values[row_ids], self.heap)

    def rename(self, name: str) -> "Column":
        return Column(name, self.ctype, self.values, self.heap)

    def logical(self) -> list:
        """Decode the whole column to logical Python values."""
        if self.ctype.is_string:
            return self.heap.decode_many(self.values)
        return [self.ctype.to_python(v) for v in self.values]

    def logical_value(self, row: int):
        """Decode a single row."""
        if self.ctype.is_string:
            return self.heap.decode(int(self.values[row]))
        return self.ctype.to_python(int(self.values[row]))

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.ctype.kind.value}, nrows={self.nrows})"
