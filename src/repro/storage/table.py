"""Relational tables over column files.

Rows are addressed by implicit RowID = array index; the table never
materialises a RowID column (the paper, Sec. VI-D: "Such a column is
implicit and does not need to be stored in DRAM or flash").
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.storage.column import Column


class Table:
    """An ordered collection of equal-length named columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns in table {name!r}: {lengths}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}")
        self.name = name
        self._columns = list(columns)
        self._by_name = {c.name: c for c in columns}

    # -- access ---------------------------------------------------------------

    @property
    def columns(self) -> list[Column]:
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self._columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    @property
    def nrows(self) -> int:
        return len(self._columns[0])

    @property
    def nbytes(self) -> int:
        """On-flash size of all column files (excluding string heaps)."""
        return sum(c.nbytes for c in self._columns)

    @property
    def heap_bytes(self) -> int:
        return sum(c.heap_bytes for c in self._columns)

    # -- transforms -------------------------------------------------------------

    def take(self, row_ids: np.ndarray) -> "Table":
        """Positional row gather across all columns."""
        return Table(self.name, [c.take(row_ids) for c in self._columns])

    def select(self, names: Iterable[str]) -> "Table":
        """Column projection, preserving the given order."""
        return Table(self.name, [self.column(n) for n in names])

    def with_column(self, column: Column) -> "Table":
        """A new table with ``column`` appended (or replaced by name)."""
        cols = [c for c in self._columns if c.name != column.name]
        return Table(self.name, cols + [column])

    def renamed(self, name: str) -> "Table":
        return Table(name, self._columns)

    # -- comparison / display ------------------------------------------------------

    def to_rows(self) -> list[tuple]:
        """Decode the table into logical Python row tuples."""
        decoded = [c.logical() for c in self._columns]
        return list(zip(*decoded)) if decoded else []

    def to_dict(self) -> dict[str, list]:
        return {c.name: c.logical() for c in self._columns}

    def equals(self, other: "Table", *, ordered: bool = True) -> bool:
        """Logical equality: same columns, same decoded values.

        With ``ordered=False`` rows are compared as multisets, matching
        SQL's bag semantics for un-ORDER-BY'd results.
        """
        if self.column_names != other.column_names:
            return False
        mine, theirs = self.to_rows(), other.to_rows()
        if ordered:
            return mine == theirs
        return sorted(map(repr, mine)) == sorted(map(repr, theirs))

    @classmethod
    def from_mapping(
        cls, name: str, data: Mapping[str, Column]
    ) -> "Table":
        return cls(name, [col.rename(n) for n, col in data.items()])

    def head(self, n: int = 10) -> str:
        """A plain-text preview of the first ``n`` rows."""
        rows = self.take(np.arange(min(n, self.nrows))).to_rows()
        header = " | ".join(self.column_names)
        lines = [header, "-" * len(header)]
        lines += [" | ".join(str(v) for v in row) for row in rows]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, nrows={self.nrows}, "
            f"columns={self.column_names})"
        )
