"""Column type system.

AQUOMAN's datapath is integer-only (Table II's PE ISA has no float ops),
so every SQL type is represented as a fixed-width integer:

- ``INT32`` / ``INT64`` — plain integers.
- ``DECIMAL`` — fixed-point with two fractional digits, stored as int64
  hundredths (TPC-H prices/discounts/taxes are all decimal(15,2)).
- ``DATE`` — int32 days since 1970-01-01.
- ``CHAR`` — a 32-bit code into a per-column string heap.
- ``BOOL`` — a 1-byte flag column (the output of the regex accelerator).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum

import numpy as np

DECIMAL_SCALE = 100
_EPOCH = _dt.date(1970, 1, 1)


class TypeKind(Enum):
    """The physical interpretation of a column's integer payload."""

    INT32 = "int32"
    INT64 = "int64"
    DECIMAL = "decimal"
    DATE = "date"
    CHAR = "char"
    BOOL = "bool"
    FLOAT = "float"  # result-only: post-division values; never on flash


@dataclass(frozen=True)
class ColumnType:
    """A column's logical kind plus its physical width and NumPy dtype."""

    kind: TypeKind
    width: int
    dtype: np.dtype

    def __repr__(self) -> str:
        return f"ColumnType({self.kind.value})"

    @property
    def is_string(self) -> bool:
        return self.kind is TypeKind.CHAR

    def to_python(self, raw):
        """Decode one raw value into its logical Python value."""
        if self.kind is TypeKind.DECIMAL:
            return int_to_decimal(raw)
        if self.kind is TypeKind.DATE:
            return days_to_date(raw)
        if self.kind is TypeKind.BOOL:
            return bool(raw)
        if self.kind is TypeKind.FLOAT:
            return float(raw)
        return int(raw)


INT32 = ColumnType(TypeKind.INT32, 4, np.dtype(np.int32))
FLOAT = ColumnType(TypeKind.FLOAT, 8, np.dtype(np.float64))
INT64 = ColumnType(TypeKind.INT64, 8, np.dtype(np.int64))
DECIMAL = ColumnType(TypeKind.DECIMAL, 8, np.dtype(np.int64))
DATE = ColumnType(TypeKind.DATE, 4, np.dtype(np.int32))
CHAR = ColumnType(TypeKind.CHAR, 4, np.dtype(np.int32))
BOOL = ColumnType(TypeKind.BOOL, 1, np.dtype(np.int8))


def decimal_to_int(value: float | str) -> int:
    """Encode a decimal number as int64 hundredths.

    >>> decimal_to_int("12.34")
    1234
    """
    if isinstance(value, str):
        value = float(value)
    return int(round(value * DECIMAL_SCALE))


def int_to_decimal(raw: int) -> float:
    """Decode int64 hundredths back to a float."""
    return raw / DECIMAL_SCALE


def date_to_days(value: str | _dt.date) -> int:
    """Encode a date (``'1998-09-01'`` or ``datetime.date``) as epoch days."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Decode epoch days back to a ``datetime.date``."""
    return _EPOCH + _dt.timedelta(days=int(days))
