"""Source model for the conccheck passes: AST index + call graph.

Loads every module of the package (or any explicit set of sources),
indexes functions by qualified name (``repro.engine.morsel:SpanRunner.
run_span_safe``; nested functions carry ``.<locals>.`` segments like
``__qualname__`` does), records module-level global bindings, scans
``# conc: safe`` suppression comments, and builds a conservative
call graph so the passes can ask one question cheaply: *is this
function reachable from a worker entry point?*

Call resolution is deliberately over-approximate — a race checker
that misses edges is worthless — but bounded so the worker-reachable
set stays meaningful:

- bare names resolve through local defs, module globals and
  (function- or module-level) imports;
- ``ClassName.method`` and ``module.func`` resolve through the same
  namespaces;
- ``self.m()`` / ``cls.m()`` resolve within the enclosing class;
- ``x.m()`` where ``x = ClassName(...)`` or ``x = ClassName.factory
  (...)`` in the same function resolves against ``ClassName`` (the
  classmethod-factory idiom: the result is assumed to be an instance);
- any remaining attribute call resolves *by method name* against every
  project class defining it, but only when few classes do
  (:attr:`CallGraph.distinctive_max_definers`) — common names like
  ``run`` stay unresolved rather than wiring the whole repo together;
- referencing a function without calling it (``pool.map(runner.
  run_span_safe, spans)``) adds a may-call edge under the same rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

__all__ = [
    "CallRef",
    "ClassInfo",
    "FuncInfo",
    "GlobalInfo",
    "Project",
    "SourceModule",
]

_SAFE_RE = re.compile(r"#\s*conc:\s*safe\b(?P<why>.*)", re.IGNORECASE)

_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "deque",
                  "Counter", "OrderedDict"}


@dataclass
class GlobalInfo:
    """One module-level binding."""

    name: str
    line: int
    mutable: bool    # bound to a dict/list/set(-like) literal or ctor
    is_function: bool = False
    is_class: bool = False


@dataclass
class CallRef:
    """One call (or function reference) site inside a function body."""

    kind: str                  # "bare" | "attr"
    name: str                  # callee bare name / attribute name
    receiver: str | None       # textual receiver chain for attr calls
    node: ast.AST | None = None  # the Call (or reference) node


@dataclass
class FuncInfo:
    """One function or method (possibly nested)."""

    qualname: str              # "pkg.mod:Class.meth" / "pkg.mod:f"
    module: str
    name: str
    node: FunctionNode
    path: str
    cls: str | None            # enclosing class name, if any
    calls: list[CallRef] = field(default_factory=list)
    # names this function binds locally (params, assignments, imports)
    local_names: set[str] = field(default_factory=set)
    # local name -> class qualname guess ("pkg.mod:Class")
    local_types: dict[str, str] = field(default_factory=dict)
    # local name -> imported target ("pkg.mod" | "pkg.mod:obj")
    local_imports: dict[str, str] = field(default_factory=dict)
    # immediate nested function defs, by bare name
    nested: dict[str, str] = field(default_factory=dict)

    @property
    def return_annotation(self) -> str:
        returns = getattr(self.node, "returns", None)
        return ast.unparse(returns) if returns is not None else ""


@dataclass
class ClassInfo:
    qualname: str              # "pkg.mod:Class"
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)  # bare -> qual


class SourceModule:
    """One parsed source file plus its suppression map."""

    def __init__(self, module: str, path: str, source: str) -> None:
        self.module = module
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        # line (1-based) -> justification text for "# conc: safe";
        # tokenized so the marker inside a docstring does not count
        self.safe_lines: dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(source).readline
            )
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _SAFE_RE.search(tok.string)
                if match:
                    self.safe_lines[tok.start[0]] = \
                        match.group("why").strip(" -—:")
        except tokenize.TokenError:  # pragma: no cover
            pass
        # module-level import map: local name -> dotted target
        self.imports: dict[str, str] = {}
        self.globals: dict[str, GlobalInfo] = {}

    def is_safe_line(self, lineno: int) -> bool:
        """Suppressed when the annotation sits on the line itself or
        anywhere in the contiguous pure-comment block directly above."""
        if lineno in self.safe_lines:
            return True
        lines = self.source.splitlines()
        cursor = lineno - 1
        while cursor >= 1 and \
                lines[cursor - 1].strip().startswith("#"):
            if cursor in self.safe_lines:
                return True
            cursor -= 1
        return False


def _receiver_text(node: ast.AST) -> str | None:
    """Dotted receiver chain ("self.tracer", "procpool") or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FunctionScanner(ast.NodeVisitor):
    """Collects calls, references, locals and type guesses for one
    function body (not descending into nested defs — those are scanned
    as their own functions)."""

    def __init__(self, info: FuncInfo, project: "Project") -> None:
        self.info = info
        self.project = project

    def scan(self, node: FunctionNode) -> None:
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.info.local_names.add(a.arg)
        if args.vararg:
            self.info.local_names.add(args.vararg.arg)
        if args.kwarg:
            self.info.local_names.add(args.kwarg.arg)
        for child in node.body:
            self.visit(child)

    # -- nested scopes are separate functions -------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.info.local_names.add(node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.info.local_names.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # opaque; boundary pass inspects lambdas positionally

    # -- namespace tracking --------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.info.local_imports[name] = alias.name
            self.info.local_names.add(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            name = alias.asname or alias.name
            self.info.local_imports[name] = \
                f"{node.module}:{alias.name}"
            self.info.local_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.info.local_names.add(target.id)
                guess = self._class_of(node.value)
                if guess:
                    self.info.local_types[target.id] = guess
        self.generic_visit(node)

    def _class_of(self, value: ast.AST) -> str | None:
        """``x = ClassName(...)`` / ``x = ClassName.factory(...)``."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            name = func.value.id  # classmethod-factory idiom
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return None
        return self.project.resolve_class(self.info, name)

    # -- call and reference collection ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.info.calls.append(
                CallRef("bare", func.id, None, node)
            )
        elif isinstance(func, ast.Attribute):
            self.info.calls.append(
                CallRef("attr", func.attr, _receiver_text(func.value),
                        node)
            )
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def visit_Name(self, node: ast.Name) -> None:
        # A bare reference (callback / map argument) is a may-call.
        if isinstance(node.ctx, ast.Load):
            self.info.calls.append(CallRef("bare", node.id, None, node))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.info.calls.append(
                CallRef("attr", node.attr, _receiver_text(node.value),
                        node)
            )
        self.generic_visit(node)


class Project:
    """A set of parsed modules with a function index and call graph."""

    def __init__(self, distinctive_max_definers: int = 3) -> None:
        self.modules: dict[str, SourceModule] = {}
        self.functions: dict[str, FuncInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.distinctive_max_definers = distinctive_max_definers
        # bare method name -> [qualified function names]
        self._by_method_name: dict[str, list[str]] = {}
        self._edges: dict[str, set[str]] | None = None

    # -- loading -------------------------------------------------------------

    @classmethod
    def load_package(
        cls, package_root: Path, package: str = "repro",
        distinctive_max_definers: int = 3,
    ) -> "Project":
        """Parse every ``*.py`` under the package directory."""
        project = cls(distinctive_max_definers)
        for path in sorted(package_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(package_root).with_suffix("")
            parts = [package, *rel.parts]
            if parts[-1] == "__init__":
                parts = parts[:-1]
            project.add_source(
                ".".join(parts), str(path), path.read_text()
            )
        project.index()
        return project

    @classmethod
    def from_sources(
        cls, sources: dict[str, str],
        distinctive_max_definers: int = 3,
    ) -> "Project":
        """Build from in-memory ``{module_name: source}`` (tests and
        the seeded self-check)."""
        project = cls(distinctive_max_definers)
        for module, source in sources.items():
            path = module.replace(".", "/") + ".py"
            project.add_source(module, path, source)
        project.index()
        return project

    def add_source(self, module: str, path: str, source: str) -> None:
        self.modules[module] = SourceModule(module, path, source)

    # -- indexing ------------------------------------------------------------

    def index(self) -> None:
        for mod in self.modules.values():
            self._index_module(mod)
        for mod in self.modules.values():
            self._scan_module(mod)
        self._edges = None

    def _index_module(self, mod: SourceModule) -> None:
        for node in mod.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    mod.imports[name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    mod.imports[name] = f"{node.module}:{alias.name}"
            elif isinstance(node, ast.Assign):
                mutable = _is_mutable_ctor(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mod.globals[target.id] = GlobalInfo(
                            target.id, node.lineno, mutable
                        )
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                mod.globals[node.target.id] = GlobalInfo(
                    node.target.id, node.lineno,
                    _is_mutable_ctor(node.value)
                    or _is_mutable_annotation(node.annotation),
                )
        # functions, classes, methods, nested defs
        self._index_scope(mod, mod.tree.body, prefix="", cls=None)

    def _index_scope(
        self, mod: SourceModule, body: list[ast.stmt], prefix: str,
        cls: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.module}:{prefix}{node.name}"
                info = FuncInfo(
                    qualname=qual, module=mod.module, name=node.name,
                    node=node, path=mod.path, cls=cls,
                )
                self.functions[qual] = info
                if prefix == "":
                    mod.globals[node.name] = GlobalInfo(
                        node.name, node.lineno, False, is_function=True
                    )
                if cls is not None and "<locals>" not in prefix:
                    self.classes[
                        f"{mod.module}:{cls}"
                    ].methods[node.name] = qual
                    self._by_method_name.setdefault(
                        node.name, []
                    ).append(qual)
                # nested defs live inside the function's own scope
                self._index_scope(
                    mod, node.body,
                    prefix=f"{prefix}{node.name}.<locals>.", cls=cls,
                )
            elif isinstance(node, ast.ClassDef):
                cqual = f"{mod.module}:{node.name}"
                self.classes[cqual] = ClassInfo(
                    cqual, mod.module, node.name, node
                )
                if prefix == "":
                    mod.globals[node.name] = GlobalInfo(
                        node.name, node.lineno, False, is_class=True
                    )
                self._index_scope(
                    mod, node.body, prefix=f"{prefix}{node.name}.",
                    cls=node.name,
                )

    def _scan_module(self, mod: SourceModule) -> None:
        for info in self.functions.values():
            if info.module != mod.module:
                continue
            scanner = _FunctionScanner(info, self)
            scanner.scan(info.node)
            for child in info.node.body:
                if isinstance(child,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.nested[child.name] = (
                        f"{info.qualname}.<locals>.{child.name}"
                    )

    # -- name resolution ------------------------------------------------------

    def resolve_class(
        self, info: FuncInfo, name: str
    ) -> str | None:
        """A bare name to a project class qualname, through imports."""
        target = info.local_imports.get(name)
        mod = self.modules[info.module]
        if target is None:
            target = mod.imports.get(name)
        if target is None:
            qual = f"{info.module}:{name}"
            return qual if qual in self.classes else None
        if ":" in target:
            target_mod, obj = target.split(":", 1)
            qual = f"{target_mod}:{obj}"
            return qual if qual in self.classes else None
        return None

    def _resolve_bare(
        self, info: FuncInfo, name: str
    ) -> list[str]:
        """A bare call/reference to function qualnames."""
        if name in info.nested:
            return [info.nested[name]]
        target = info.local_imports.get(name) \
            or self.modules[info.module].imports.get(name)
        if target is not None and ":" in target:
            target_mod, obj = target.split(":", 1)
            qual = f"{target_mod}:{obj}"
            if qual in self.functions:
                return [qual]
            if qual in self.classes:
                init = self.classes[qual].methods.get("__init__")
                return [init] if init else []
            return []
        qual = f"{info.module}:{name}"
        if qual in self.functions:
            return [qual]
        if qual in self.classes:
            init = self.classes[qual].methods.get("__init__")
            return [init] if init else []
        return []

    def _resolve_attr(
        self, info: FuncInfo, ref: CallRef
    ) -> list[str]:
        recv, name = ref.receiver, ref.name
        if recv in ("self", "cls") and info.cls is not None:
            cls = self.classes.get(f"{info.module}:{info.cls}")
            if cls and name in cls.methods:
                return [cls.methods[name]]
            # fall through: inherited / dynamic methods hit the
            # distinctive-name net below
        if recv is not None and "." not in recv:
            # ClassName.method
            cqual = self.resolve_class(info, recv)
            if cqual is not None:
                method = self.classes[cqual].methods.get(name)
                return [method] if method else []
            # module.func
            target = info.local_imports.get(recv) \
                or self.modules[info.module].imports.get(recv)
            if target is not None and ":" not in target:
                qual = f"{target}:{name}"
                if qual in self.functions:
                    return [qual]
                if qual in self.classes:
                    init = self.classes[qual].methods.get("__init__")
                    return [init] if init else []
            # x.m() where x = ClassName(...) locally
            guessed = info.local_types.get(recv)
            if guessed is not None:
                method = self.classes[guessed].methods.get(name)
                if method:
                    return [method]
        # distinctive-name fallback
        candidates = self._by_method_name.get(name, ())
        definers = {self.functions[q].cls for q in candidates}
        if candidates and len(definers) <= self.distinctive_max_definers:
            return list(candidates)
        return []

    # -- call graph -----------------------------------------------------------

    def edges(self) -> dict[str, set[str]]:
        if self._edges is None:
            edges: dict[str, set[str]] = {}
            for qual, info in self.functions.items():
                out: set[str] = set()
                for ref in info.calls:
                    if ref.kind == "bare":
                        out.update(self._resolve_bare(info, ref.name))
                    else:
                        out.update(self._resolve_attr(info, ref))
                out.discard(qual)
                edges[qual] = out
            self._edges = edges
        return self._edges

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Qualnames reachable (inclusively) from the given roots."""
        edges = self.edges()
        seen: set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(edges.get(qual, ()) - seen)
        return seen

    def missing_roots(self, roots: Iterable[str]) -> list[str]:
        return [r for r in roots if r not in self.functions]

    # -- convenience -----------------------------------------------------------

    def module_of(self, info: FuncInfo) -> SourceModule:
        return self.modules[info.module]

    def functions_in_scope(
        self, quals: Iterable[str]
    ) -> list[FuncInfo]:
        """FuncInfos for qualnames, in deterministic source order."""
        infos = [self.functions[q] for q in quals
                 if q in self.functions]
        return sorted(
            infos, key=lambda i: (i.path, i.node.lineno)
        )


def _is_mutable_ctor(value: ast.AST | None) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CTORS
    return False


def _is_mutable_annotation(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip()
    return head in ("dict", "list", "set", "Dict", "List", "Set",
                    "defaultdict", "deque")
