"""Concurrency & determinism static analysis over the runtime's own
source (``python -m repro lint``).

PR 2 made static verdicts the correctness gate for *plans*
(AQ1xx–AQ4xx); this package extends the same discipline to the
runtime's own code.  The guarantees the process pool and the fault
layer depend on — bit-identical recovery as a pure function of
``(seed, site)``, fork/pickle safety across the pool boundary,
deterministic lane attribution, ambient-state hygiene — are checked
from the AST, without importing or executing the code under analysis,
and emitted as stable ``AQ5xx`` diagnostics with ``file:line`` loci
in the same human/JSON formats as ``repro analyze``.

Four passes (see DESIGN.md §11 for the full code table):

- **races** (AQ501–AQ503): writes to module/class-level state
  reachable from worker entry points, without a lock;
- **boundary** (AQ510–AQ513): lambdas, closures and known-unpicklable
  captures crossing the ``ProcessPool`` dispatch boundary;
- **determinism** (AQ520–AQ523): unseeded RNGs, wall-clock reads,
  ``id()``-keyed decisions and set-iteration-order dependence in
  result-affecting paths;
- **ambient** (AQ530–AQ531): ambient tracer/injector installation and
  repatriation (``Tracer.adopt`` / ``FaultInjector.absorb``) outside
  the sanctioned points.

True negatives are justified in-line with ``# conc: safe — reason``;
legacy findings can be grandfathered in the committed baseline
(``--baseline`` regenerates it).  ``AQ500`` (a configured root
vanished) and ``AQ540`` (a stale baseline entry) keep the contract
itself honest.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.conccheck.ambient import run_ambient_pass
from repro.analysis.conccheck.boundary import run_boundary_pass
from repro.analysis.conccheck.config import (
    LintConfig,
    default_baseline_path,
    default_config,
    package_root,
    repo_root,
)
from repro.analysis.conccheck.determinism import run_determinism_pass
from repro.analysis.conccheck.model import Project
from repro.analysis.conccheck.races import run_races_pass
from repro.analysis.conccheck.report import (
    LintDiagnostic,
    LintReport,
    apply_baseline,
    lint_diag,
    load_baseline,
    write_baseline,
)
from repro.analysis.diagnostics import Severity

__all__ = [
    "LintConfig",
    "LintDiagnostic",
    "LintReport",
    "Project",
    "default_config",
    "lint_project",
    "lint_repo",
]


def lint_project(
    project: Project, config: LintConfig
) -> LintReport:
    """Run the configured passes over an already-loaded project."""
    t0 = time.perf_counter()
    report = LintReport(passes=config.passes)
    report.n_files = len(project.modules)
    report.n_functions = len(project.functions)

    for missing in project.missing_roots(
        (*config.worker_roots, *config.result_roots,
         *config.sanctioned_installers,
         *config.sanctioned_repatriation)
    ):
        report.add(lint_diag(
            "AQ500",
            f"configured root {missing!r} not found: the concurrency "
            "contract in conccheck/config.py is out of date",
        ))

    worker_reachable = project.reachable_from(config.worker_roots)
    result_scope = worker_reachable | project.reachable_from(
        config.result_roots
    )
    report.n_worker_reachable = len(worker_reachable)

    raw: list[LintDiagnostic] = []
    if "races" in config.passes:
        raw += run_races_pass(project, worker_reachable)
    if "boundary" in config.passes:
        raw += run_boundary_pass(project)
    if "determinism" in config.passes:
        raw += run_determinism_pass(
            project, result_scope,
            exempt_prefixes=config.determinism_exempt,
        )
    if "ambient" in config.passes:
        raw += run_ambient_pass(
            project, worker_reachable,
            installers=config.ambient_installers,
            sanctioned_installers=config.sanctioned_installers,
            repatriation_methods=config.repatriation_methods,
            sanctioned_repatriation=config.sanctioned_repatriation,
        )

    # The passes drop suppressed findings before they reach us; the
    # suppression tally below recounts them for the report so the
    # human output shows how much is annotated away.
    report.extend(raw)
    report.suppressed = _collect_suppressed(project)
    report.elapsed_s = time.perf_counter() - t0
    report.sort()
    return report


def _collect_suppressed(project: Project) -> list[LintDiagnostic]:
    """One INFO record per ``# conc: safe`` annotation, so the report
    (and the tests) can see the justification surface."""
    out: list[LintDiagnostic] = []
    for mod in project.modules.values():
        for line, why in sorted(mod.safe_lines.items()):
            out.append(LintDiagnostic(
                code="AQ5xx",
                severity=Severity.INFO,
                message=f"conc: safe — {why}" if why else "conc: safe",
                path=mod.path,
                line=line,
            ))
    return out


def lint_repo(
    config: LintConfig | None = None,
    baseline_path: str | Path | None = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint the installed ``repro`` package sources."""
    config = config or default_config()
    root = package_root()
    project = Project.load_package(
        root, config.package,
        distinctive_max_definers=config.distinctive_max_definers,
    )
    _relativize(project, root)
    report = lint_project(project, config)
    if use_baseline:
        path = Path(baseline_path) if baseline_path is not None \
            else default_baseline_path()
        baseline = load_baseline(path)
        if baseline:
            apply_baseline(report, baseline)
            report.sort()
    return report


def _relativize(project: Project, package_dir: Path) -> None:
    """Rewrite stored paths repo-relative (``src/repro/...``) so
    reports and baseline fingerprints are checkout-independent."""
    try:
        prefix = package_dir.relative_to(repo_root())
    except ValueError:  # package imported from outside the checkout
        prefix = Path("src/repro")
    for mod in project.modules.values():
        mod.path = str(
            prefix / Path(mod.path).relative_to(package_dir)
        )
    for info in project.functions.values():
        info.path = project.modules[info.module].path
