"""Pass 3 — determinism lint over result-affecting paths (AQ520–AQ523).

The recovery contract (DESIGN.md §9) makes every result a pure
function of the query and, under injection, of ``(seed, site)``; the
merge rules (§5) additionally require partials to combine identically
at any worker count.  Those contracts die quietly the moment a
result-affecting path consults an unseeded RNG, the wall clock, object
identity, or set iteration order.  This pass walks every function
reachable from the worker entry points *and* the merge/pack roots and
rejects:

- ``AQ520`` — unseeded RNG: ``random.*`` module-level functions,
  ``np.random.*`` legacy global state, ``np.random.default_rng()``
  without a seed;
- ``AQ521`` — wall-clock reads (``time.time``, ``datetime.now``,
  ``time.monotonic``...).  Observability modules are exempt by
  configuration: spans *measure* time without affecting results;
- ``AQ522`` — ``id(...)`` in a result-affecting path: identity is
  per-process and allocation-order dependent, so any ``id``-keyed
  decision needs a ``# conc: safe`` proof that it never leaves the
  process;
- ``AQ523`` — iteration over a set (literal, constructor, comprehension,
  set-algebra result, or a call to a project function returning
  ``set[...]``) in merge/pack code without ``sorted(...)``: string
  hashes vary per process (``PYTHONHASHSEED``), so set order is not
  even stable between a worker and its parent.

Membership tests (``x in needed``) and ``sorted(set_expr)`` are fine —
only *order-observing* uses are flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.conccheck.model import FuncInfo, Project
from repro.analysis.conccheck.report import LintDiagnostic, lint_diag

__all__ = ["WALL_CLOCK_CALLS", "run_determinism_pass"]

# module-alias -> attribute names that read the wall clock
WALL_CLOCK_CALLS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "localtime", "gmtime",
             "strftime", "ctime"},
    "datetime": {"now", "today", "utcnow"},
    "date": {"today"},
}

_RANDOM_SEEDED_OK = {"default_rng", "Generator", "SeedSequence",
                     "PCG64", "Philox"}


def _set_returning(info: FuncInfo, project: Project,
                   call: ast.Call) -> bool:
    """Does this call resolve to a project function annotated -> set?"""
    func = call.func
    quals: list[str] = []
    if isinstance(func, ast.Name):
        quals = project._resolve_bare(info, func.id)
    elif isinstance(func, ast.Attribute):
        from repro.analysis.conccheck.model import CallRef, \
            _receiver_text
        quals = project._resolve_attr(
            info, CallRef("attr", func.attr,
                          _receiver_text(func.value), call)
        )
    for qual in quals:
        ann = project.functions[qual].return_annotation
        head = ann.split("[", 1)[0].strip()
        if head in ("set", "frozenset", "Set", "FrozenSet"):
            return True
    return False


class _DetVisitor(ast.NodeVisitor):
    def __init__(self, info: FuncInfo, project: Project,
                 out: list[LintDiagnostic]) -> None:
        self.info = info
        self.project = project
        self.mod = project.module_of(info)
        self.out = out
        # local names known to hold sets
        self.set_names: set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are scanned as their own functions

    visit_AsyncFunctionDef = visit_FunctionDef

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        if self.mod.is_safe_line(node.lineno):
            return
        self.out.append(lint_diag(
            code, message, path=self.info.path, node=node,
            symbol=self.info.qualname,
        ))

    # -- set typing ------------------------------------------------------------

    def _is_set_expr(self, expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.set_names
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in ("set", "frozenset"):
                return True
            if name in ("union", "intersection", "difference",
                        "symmetric_difference") and \
                    isinstance(func, ast.Attribute) and \
                    self._is_set_expr(func.value):
                return True
            if name == "column_refs":
                return True  # Expr.column_refs() -> set[str], pervasive
            return _set_returning(self.info, self.project, expr)
        if isinstance(expr, ast.BinOp) and \
                isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
            return self._is_set_expr(expr.left) or \
                self._is_set_expr(expr.right)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        target = node.targets[0] if len(node.targets) == 1 else None
        if isinstance(target, ast.Name):
            if self._is_set_expr(node.value):
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # needed |= step.predicate.column_refs() keeps set-ness
        self.generic_visit(node)

    # -- order-observing uses ---------------------------------------------------

    def _check_iteration(self, iter_expr: ast.AST,
                         node: ast.AST) -> None:
        if self._is_set_expr(iter_expr):
            self._flag(
                "AQ523", node,
                "iteration over a set in a merge/result path: set "
                "order depends on per-process string hashing — wrap "
                "in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        # list(set) / tuple(set) / enumerate(set): order-observing
        if name in ("list", "tuple", "enumerate", "iter", "next",
                    "zip", "map") and node.args:
            for arg in node.args:
                self._check_iteration(arg, node)
        if name == "id" and isinstance(func, ast.Name) and \
                "id" not in self.info.local_names:
            self._flag(
                "AQ522", node,
                "id(...) in a result-affecting path: object identity "
                "is per-process and allocation-ordered",
            )
        self._check_rng(node, name)
        self._check_clock(node, name)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, name: str) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            # `from random import random` style
            target = self.info.local_imports.get(name) \
                or self.mod.imports.get(name)
            if target is not None and target.startswith("random:"):
                self._flag(
                    "AQ520", node,
                    f"unseeded random.{target.split(':')[1]}() in a "
                    "result-affecting path",
                )
            return
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "random":
            if name not in ("Random", "SystemRandom", "seed"):
                self._flag(
                    "AQ520", node,
                    f"unseeded random.{name}() shares global RNG "
                    "state across workers",
                )
            elif name == "seed":
                self._flag(
                    "AQ520", node,
                    "random.seed() mutates interpreter-global RNG "
                    "state — derive a seeded Generator instead",
                )
        elif isinstance(recv, ast.Attribute) and \
                recv.attr == "random" and \
                isinstance(recv.value, ast.Name) and \
                recv.value.id in ("np", "numpy"):
            if name == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(
                        "AQ520", node,
                        "np.random.default_rng() without a seed is "
                        "nondeterministic",
                    )
            elif name not in _RANDOM_SEEDED_OK:
                self._flag(
                    "AQ520", node,
                    f"np.random.{name}() uses the legacy global RNG "
                    "state",
                )

    def _check_clock(self, node: ast.Call, name: str) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                not isinstance(func.value, ast.Name):
            return
        recv = func.value.id
        if name in WALL_CLOCK_CALLS.get(recv, ()):
            self._flag(
                "AQ521", node,
                f"wall-clock read {recv}.{name}() in a "
                "result-affecting path",
            )


def run_determinism_pass(
    project: Project, scope: set[str],
    exempt_prefixes: tuple[str, ...] = (),
) -> list[LintDiagnostic]:
    out: list[LintDiagnostic] = []
    for info in project.functions_in_scope(scope):
        if any(info.module.startswith(p) for p in exempt_prefixes):
            continue
        visitor = _DetVisitor(info, project, out)
        # pre-seed set-typed locals from parameter annotations
        args = info.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if a.annotation is not None:
                head = ast.unparse(a.annotation).split("[", 1)[0]
                if head.strip() in ("set", "frozenset"):
                    visitor.set_names.add(a.arg)
        for stmt in info.node.body:
            visitor.visit(stmt)
    return out
