"""Lint configuration: roots, sanctioned points, exemptions.

The configuration *is* the concurrency contract, written down: which
functions are worker entry points, which merge/pack functions must be
deterministic, and which functions are allowed to touch ambient state.
Each qualname listed here is verified to exist at lint time — renaming
``SpanRunner.run_span_safe`` without updating the contract fails the
build with ``AQ500`` rather than silently shrinking the checked
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "LintConfig",
    "default_baseline_path",
    "default_config",
    "package_root",
    "repo_root",
]

DEFAULT_BASELINE = "baseline.json"


@dataclass
class LintConfig:
    """Everything one :func:`~repro.analysis.conccheck.lint_project`
    run needs besides the sources."""

    package: str = "repro"
    # Functions whose bodies execute on worker threads / forked workers.
    worker_roots: tuple[str, ...] = ()
    # Merge / partial-(un)pack functions: deterministic by contract.
    result_roots: tuple[str, ...] = ()
    # Module prefixes exempt from the wall-clock/determinism checks
    # (observability measures time without affecting results).
    determinism_exempt: tuple[str, ...] = ()
    # Ambient-state installer functions (by bare name).
    ambient_installers: tuple[str, ...] = (
        "set_global_tracer", "set_fault_injector", "set_degraded",
        "clear_degraded", "set_last_trace", "set_query_context",
        "set_query_log", "set_timeseries", "set_slo_engine",
    )
    # Worker-reachable functions allowed to call the installers.
    sanctioned_installers: tuple[str, ...] = ()
    # Repatriation method names and their only allowed call sites.
    repatriation_methods: tuple[str, ...] = ("adopt", "absorb")
    sanctioned_repatriation: tuple[str, ...] = ()
    # Attribute-call fallback: resolve a method name against every
    # class defining it only when at most this many classes do.
    distinctive_max_definers: int = 3
    passes: tuple[str, ...] = (
        "races", "boundary", "determinism", "ambient",
    )
    extra: dict = field(default_factory=dict)


def repo_root() -> Path:
    """The checkout root (the directory holding ``src/``)."""
    return Path(__file__).resolve().parents[4]


def package_root() -> Path:
    return Path(__file__).resolve().parents[2]


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / DEFAULT_BASELINE


def default_config() -> LintConfig:
    """The committed concurrency contract for this repository."""
    return LintConfig(
        package="repro",
        worker_roots=(
            # forked process worker: batch loop and dispatcher
            "repro.engine.procpool:_worker_main",
            "repro.engine.procpool:_handle",
            # shared thread pool worker loop
            "repro.engine.procpool:SpanThreadPool._worker_loop",
            # the per-span pipeline both backends execute
            "repro.engine.morsel:SpanRunner.run_span_safe",
            # the device's streamed Row Selector chunk closure
            "repro.core.device:AquomanDevice._select_streamed"
            ".<locals>.run_span",
            # the time-series sampler thread (rollup-ring writes)
            "repro.obs.timeseries:Sampler._loop",
            "repro.obs.timeseries:Sampler.tick",
        ),
        result_roots=(
            "repro.engine.morsel:MorselExecutor._merge",
            "repro.engine.morsel:MorselExecutor._merge_aggregate",
            "repro.engine.morsel:pack_partial",
            "repro.engine.morsel:unpack_partial",
            "repro.engine.morsel:_concat_relations",
            "repro.engine.procpool:absorb_obs",
            "repro.faults.injector:FaultInjector.absorb",
        ),
        determinism_exempt=("repro.obs",),
        sanctioned_installers=(
            # process-worker batch setup/teardown
            "repro.engine.procpool:_worker_main",
            "repro.engine.procpool:_handle",
            # degradation bookkeeping: the injector flips /healthz on
            # recovery paths; workers repatriate the flag via replies
            "repro.faults.injector:FaultInjector.charge_page_reads",
            "repro.faults.injector:FaultInjector.record_fallback",
            "repro.faults.injector:FaultInjector.record_unrecoverable",
            # SLO transitions flip the same degraded flag from the
            # sampler thread (fire → set, drain → clear)
            "repro.obs.slo:SloEngine._sync_degraded",
        ),
        sanctioned_repatriation=(
            "repro.engine.procpool:absorb_obs",
        ),
    )
