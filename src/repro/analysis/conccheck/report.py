"""Lint diagnostics with file:line loci, plus the suppression baseline.

The conccheck engine reports findings in the same two shapes the plan
analyzer uses (``repro analyze``): a human multi-line report and a
machine-checkable JSON document.  Where a plan diagnostic is anchored
to a plan node, a lint diagnostic is anchored to a source locus —
repo-relative path, 1-based line, and the qualified name of the
enclosing function (``repro.engine.morsel:SpanRunner.run_span_safe``).

Codes are stable (``AQ5xx``, see DESIGN.md §11); a committed baseline
file maps finding fingerprints to accepted counts so a legacy finding
can be grandfathered without a source annotation.  Fingerprints
deliberately exclude line numbers — unrelated edits must not churn
the baseline.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Severity

__all__ = [
    "LintDiagnostic",
    "LintReport",
    "apply_baseline",
    "lint_diag",
    "load_baseline",
    "write_baseline",
]

# Meta-code: a baseline entry no longer matches any finding.
STALE_BASELINE = "AQ540"


@dataclass(frozen=True)
class LintDiagnostic:
    """One conccheck finding, anchored to a source locus."""

    code: str
    severity: Severity
    message: str
    path: str = ""       # repo-relative posix path
    line: int = 0        # 1-based
    col: int = 0         # 0-based, as ast reports it
    symbol: str = ""     # qualified enclosing function, "" at module level

    def __str__(self) -> str:
        locus = f" {self.path}:{self.line}" if self.path else ""
        sym = f" ({self.symbol})" if self.symbol else ""
        return f"{self.code} [{self.severity.value}]{locus}{sym}: " \
               f"{self.message}"

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the suppression baseline."""
        return f"{self.code}:{self.path}:{self.symbol}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
        }


def lint_diag(
    code: str,
    message: str,
    *,
    path: str = "",
    node: ast.AST | None = None,
    symbol: str = "",
    severity: Severity = Severity.ERROR,
) -> LintDiagnostic:
    """Build a diagnostic anchored at an AST node's locus."""
    return LintDiagnostic(
        code=code,
        severity=severity,
        message=message,
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        symbol=symbol,
    )


@dataclass
class LintReport:
    """Aggregated result of one :func:`repro.analysis.conccheck.lint_project`
    run — same verdict/format contract as
    :class:`repro.analysis.diagnostics.AnalysisReport`."""

    diagnostics: list[LintDiagnostic] = field(default_factory=list)
    suppressed: list[LintDiagnostic] = field(default_factory=list)
    baselined: list[LintDiagnostic] = field(default_factory=list)
    n_files: int = 0
    n_functions: int = 0
    n_worker_reachable: int = 0
    passes: tuple[str, ...] = ()
    elapsed_s: float = 0.0

    def add(self, diagnostic: LintDiagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[LintDiagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def errors(self) -> list[LintDiagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> list[LintDiagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[LintDiagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def sort(self) -> None:
        """Stable report order: path, line, code."""
        self.diagnostics.sort(key=lambda d: (d.path, d.line, d.code))
        self.suppressed.sort(key=lambda d: (d.path, d.line, d.code))
        self.baselined.sort(key=lambda d: (d.path, d.line, d.code))

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "n_files": self.n_files,
            "n_functions": self.n_functions,
            "n_worker_reachable": self.n_worker_reachable,
            "passes": list(self.passes),
            "elapsed_s": round(self.elapsed_s, 3),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": [d.to_json() for d in self.suppressed],
            "baselined": [d.to_json() for d in self.baselined],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2)

    def format(self, verbose: bool = False) -> str:
        """Human-readable multi-line report (the ``repro lint`` shape)."""
        lines = [
            f"conccheck: {self.n_files} files, "
            f"{self.n_functions} functions "
            f"({self.n_worker_reachable} worker-reachable), "
            f"passes: {', '.join(self.passes)}"
        ]
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.path, d.line),
        )
        if ordered:
            lines.append("diagnostics:")
            lines.extend(f"  {d}" for d in ordered)
        else:
            lines.append("diagnostics: none")
        if verbose and self.suppressed:
            lines.append("suppressed (# conc: safe):")
            lines.extend(f"  {d}" for d in self.suppressed)
        if verbose and self.baselined:
            lines.append("baselined:")
            lines.extend(f"  {d}" for d in self.baselined)
        status = "OK" if self.ok else "REJECTED"
        lines.append(
            f"verdict: {status} ({len(self.errors())} errors, "
            f"{len(self.warnings())} warnings; "
            f"{len(self.suppressed)} conc-safe, "
            f"{len(self.baselined)} baselined; "
            f"{self.elapsed_s:.2f}s)"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Suppression baseline
# ---------------------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, int]:
    """Fingerprint -> accepted count; missing file = empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    doc = json.loads(path.read_text())
    entries = doc.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}

def write_baseline(path: str | Path, report: LintReport) -> dict[str, int]:
    """Persist the current findings as the accepted baseline."""
    entries: dict[str, int] = {}
    for d in report.diagnostics + report.baselined:
        entries[d.fingerprint] = entries.get(d.fingerprint, 0) + 1
    doc = {
        "version": 1,
        "tool": "repro lint",
        "note": "accepted AQ5xx findings; regenerate with "
                "`python -m repro lint --baseline`",
        "entries": dict(sorted(entries.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return entries


def apply_baseline(
    report: LintReport, baseline: dict[str, int]
) -> None:
    """Move baselined findings out of the error set, flag stale entries.

    Each baseline entry absorbs up to ``count`` findings with its
    fingerprint; leftover findings stay live, leftover entries produce
    one :data:`STALE_BASELINE` warning each so the baseline is ratcheted
    down as code gets fixed.
    """
    budget = dict(baseline)
    live: list[LintDiagnostic] = []
    for d in report.diagnostics:
        if budget.get(d.fingerprint, 0) > 0:
            budget[d.fingerprint] -= 1
            report.baselined.append(d)
        else:
            live.append(d)
    report.diagnostics = live
    for fingerprint, remaining in sorted(budget.items()):
        if remaining > 0:
            report.add(LintDiagnostic(
                code=STALE_BASELINE,
                severity=Severity.WARNING,
                message=f"stale baseline entry {fingerprint!r} "
                        f"({remaining} unmatched): regenerate with "
                        "--baseline",
            ))
