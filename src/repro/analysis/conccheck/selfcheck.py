"""Seeded-violation self-check (``python -m repro lint --selfcheck``).

A linter that silently stops finding anything is worse than no linter:
CI would keep passing while the checked surface quietly shrank.  This
module keeps conccheck honest the same way the chaos matrix keeps the
fault layer honest — by injecting known-bad input and asserting the
detector fires.  Each scenario is a tiny in-memory module seeded with
one violation per diagnostic code of one pass; the self-check runs the
real pipeline (:func:`~repro.analysis.conccheck.lint_project` over
:meth:`Project.from_sources`) and fails loudly if any expected code
goes undetected or an unexpected code appears.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.conccheck.config import LintConfig
from repro.analysis.conccheck.model import Project

__all__ = ["SCENARIOS", "Scenario", "run_selfcheck"]


@dataclass(frozen=True)
class Scenario:
    name: str                   # the pass under test
    sources: dict               # module name -> seeded source
    config: LintConfig
    expect: tuple[str, ...]     # codes that MUST be detected


_RACES_SRC = '''\
_CACHE = {}
_COUNT = 0


class Config:
    mode = "cold"


def worker_entry(item):
    global _COUNT
    _COUNT += 1
    _CACHE[item] = item
    Config.mode = "hot"
    return item
'''

_BOUNDARY_SRC = '''\
from multiprocessing import Process


def dispatch(pool, tracer, batches):
    def helper(batch):
        return batch
    pool.run([(lambda b: b, tracer, helper) for b in batches])


def spawn(runner):
    return Process(target=runner.run, args=("x",))
'''

_DETERMINISM_SRC = '''\
import random
import time


def merge(parts):
    order = list({p for p in parts})
    jitter = random.random()
    stamp = time.time()
    key = id(parts)
    return order, jitter, stamp, key
'''

_AMBIENT_SRC = '''\
def set_global_tracer(tracer):
    pass


def worker_entry(tracer, records):
    set_global_tracer(tracer)
    tracer_of_parent().adopt(records)


def tracer_of_parent():
    return None
'''


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="races",
        sources={"seed.races": _RACES_SRC},
        config=LintConfig(
            worker_roots=("seed.races:worker_entry",),
            passes=("races",),
        ),
        expect=("AQ501", "AQ502", "AQ503"),
    ),
    Scenario(
        name="boundary",
        sources={"seed.boundary": _BOUNDARY_SRC},
        config=LintConfig(
            worker_roots=(),
            passes=("boundary",),
        ),
        expect=("AQ510", "AQ511", "AQ512", "AQ513"),
    ),
    Scenario(
        name="determinism",
        sources={"seed.det": _DETERMINISM_SRC},
        config=LintConfig(
            result_roots=("seed.det:merge",),
            passes=("determinism",),
        ),
        expect=("AQ520", "AQ521", "AQ522", "AQ523"),
    ),
    Scenario(
        name="ambient",
        sources={"seed.ambient": _AMBIENT_SRC},
        config=LintConfig(
            worker_roots=("seed.ambient:worker_entry",),
            passes=("ambient",),
        ),
        expect=("AQ530", "AQ531"),
    ),
)


def run_selfcheck() -> tuple[bool, list[str]]:
    """Run every seeded scenario; returns ``(ok, report_lines)``."""
    from repro.analysis.conccheck import lint_project

    ok = True
    lines: list[str] = []
    for scenario in SCENARIOS:
        project = Project.from_sources(scenario.sources)
        report = lint_project(project, scenario.config)
        found = {d.code for d in report.diagnostics}
        missed = [c for c in scenario.expect if c not in found]
        surprise = sorted(found - set(scenario.expect))
        if missed:
            ok = False
            lines.append(
                f"FAIL {scenario.name}: seeded violation(s) "
                f"{', '.join(missed)} went undetected"
            )
        elif surprise:
            ok = False
            lines.append(
                f"FAIL {scenario.name}: unexpected code(s) "
                f"{', '.join(surprise)} on seeded input"
            )
        else:
            lines.append(
                f"ok   {scenario.name}: "
                f"{', '.join(scenario.expect)} all detected"
            )
    lines.append(
        "selfcheck: PASS" if ok else "selfcheck: FAIL — the lint "
        "passes are no longer catching their seeded violations"
    )
    return ok, lines
