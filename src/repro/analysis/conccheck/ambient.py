"""Pass 4 — ambient-state discipline (AQ530–AQ531).

The runtime's ambient singletons — the global tracer behind
:data:`~repro.obs.spans.NULL_TRACER`, the global injector behind
:data:`~repro.faults.injector.NULL_INJECTOR`, and the ``/healthz``
degraded flag — are the one place worker and parent state deliberately
meet.  The contract (DESIGN.md §10) is narrow:

- worker-side code may *read* ambient state freely
  (``get_tracer()`` / ``get_fault_injector()`` are cheap and pure),
  but may only *install* it at the sanctioned process-worker entry
  points, where each batch gets a fresh per-batch instance
  (``AQ530`` otherwise);
- worker observability crosses back to the parent **only** through
  the repatriation APIs — :meth:`Tracer.adopt` for span records and
  :meth:`FaultInjector.absorb` for fault deltas — and those APIs are
  called only from the sanctioned repatriation points (``AQ531``
  otherwise): a stray ``adopt``/``absorb`` call double-counts
  counters and fabricates trace lanes.
"""

from __future__ import annotations

import ast

from repro.analysis.conccheck.model import Project
from repro.analysis.conccheck.report import LintDiagnostic, lint_diag

__all__ = ["run_ambient_pass"]


def run_ambient_pass(
    project: Project,
    worker_reachable: set[str],
    installers: tuple[str, ...],
    sanctioned_installers: tuple[str, ...],
    repatriation_methods: tuple[str, ...],
    sanctioned_repatriation: tuple[str, ...],
) -> list[LintDiagnostic]:
    out: list[LintDiagnostic] = []
    installer_set = set(installers)
    sanctioned_install = set(sanctioned_installers)
    repatriation = set(repatriation_methods)
    sanctioned_repat = set(sanctioned_repatriation)

    for info in project.functions_in_scope(set(project.functions)):
        mod = project.module_of(info)
        in_worker = info.qualname in worker_reachable
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in installer_set and in_worker and \
                    info.qualname not in sanctioned_install and \
                    info.name not in installer_set and \
                    not mod.is_safe_line(node.lineno):
                out.append(lint_diag(
                    "AQ530",
                    f"{name}(...) installs ambient state from "
                    "worker-reachable code outside the sanctioned "
                    "worker entry points — ambient singletons must "
                    "only be swapped at batch setup/teardown",
                    path=info.path, node=node, symbol=info.qualname,
                ))
            if name in repatriation and \
                    isinstance(func, ast.Attribute) and \
                    info.qualname not in sanctioned_repat and \
                    not mod.is_safe_line(node.lineno):
                out.append(lint_diag(
                    "AQ531",
                    f".{name}(...) repatriates worker observability "
                    "outside the sanctioned repatriation points — "
                    "spans and fault deltas would double-count",
                    path=info.path, node=node, symbol=info.qualname,
                ))
    return out
