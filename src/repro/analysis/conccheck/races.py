"""Pass 1 — worker-context race detection (AQ501–AQ503).

Starting from the configured worker entry points (the thread pool's
worker loop, the forked process worker, the span runner), every
function the call graph can reach runs concurrently on more than one
worker.  Inside that set, writes to *shared* state — module-level
names, module-level mutable containers, class attributes — are races
unless the write is guarded by a lock or carries a ``# conc: safe``
justification.

Instance attributes are deliberately out of scope: per-morsel objects
are worker-private by construction, and shared instances
(:class:`~repro.faults.injector.FaultInjector`) guard their own state
with locks the same detection honours.

Codes:

- ``AQ501`` — assignment (or ``global`` rebind / augmented assign) to
  a module-level name from worker-reachable code, outside a lock;
- ``AQ502`` — in-place mutation of a module-level mutable container
  (``X[k] = v``, ``X.append(...)``, ``del X[k]``, ...) from
  worker-reachable code, outside a lock;
- ``AQ503`` — class-attribute write from worker-reachable code.
"""

from __future__ import annotations

import ast

from repro.analysis.conccheck.model import FuncInfo, Project
from repro.analysis.conccheck.report import LintDiagnostic, lint_diag

__all__ = ["MUTATING_METHODS", "run_races_pass"]

MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "add", "discard", "update", "setdefault", "sort",
    "reverse",
})

_LOCKISH = ("lock", "mutex", "cond", "sem")


def _is_lockish(node: ast.AST) -> bool:
    """``with self._lock:`` — the context expression names a lock."""
    text = ast.unparse(node).lower()
    return any(hint in text for hint in _LOCKISH)


class _RaceVisitor(ast.NodeVisitor):
    def __init__(self, info: FuncInfo, project: Project,
                 out: list[LintDiagnostic]) -> None:
        self.info = info
        self.project = project
        self.mod = project.module_of(info)
        self.out = out
        self.lock_depth = 0
        self.global_names: set[str] = set()

    # -- scope fences ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are visited as their own functions

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_With(self, node: ast.With) -> None:
        locked = any(
            _is_lockish(item.context_expr) for item in node.items
        )
        if locked:
            self.lock_depth += 1
        self.generic_visit(node)
        if locked:
            self.lock_depth -= 1

    visit_AsyncWith = visit_With

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    # -- write detection -------------------------------------------------------

    def _module_global(self, name: str) -> bool:
        if name in self.global_names:
            return True
        info = self.mod.globals.get(name)
        if info is None or info.is_function or info.is_class:
            return False
        # locally rebound names shadow the module global
        return name not in self.info.local_names

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        if self.lock_depth:
            return
        if self.mod.is_safe_line(node.lineno):
            return
        self.out.append(lint_diag(
            code, message, path=self.info.path, node=node,
            symbol=self.info.qualname,
        ))

    def _check_target(self, target: ast.AST, node: ast.AST,
                      verb: str) -> None:
        if isinstance(target, ast.Name):
            if isinstance(node, (ast.Assign, ast.AugAssign)) and \
                    target.id in self.global_names:
                self._flag(
                    "AQ501", node,
                    f"{verb} to module-level name {target.id!r} "
                    "declared `global`, from worker-reachable code "
                    "without a lock",
                )
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            # X[k] = v / del X[k] on a module-level container
            if isinstance(target, ast.Subscript) and \
                    isinstance(base, ast.Name) and \
                    self._module_global(base.id):
                self._flag(
                    "AQ502", node,
                    f"{verb} into module-level container "
                    f"{base.id!r} from worker-reachable code "
                    "without a lock",
                )
            # ClassName.attr = v
            if isinstance(target, ast.Attribute) and \
                    isinstance(base, ast.Name):
                if self.project.resolve_class(self.info, base.id):
                    self._flag(
                        "AQ503", node,
                        f"class-attribute {verb.lower()} "
                        f"({base.id}.{target.attr}) from "
                        "worker-reachable code",
                    )
                elif base.id in ("self", "cls") and \
                        target.attr == "__class__":
                    self._flag(
                        "AQ503", node,
                        "__class__ reassignment from "
                        "worker-reachable code",
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, node, verb)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node, "write")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node, "augmented write")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node, "write")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node, "delete")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in MUTATING_METHODS:
            base = func.value
            name = None
            if isinstance(base, ast.Name):
                name = base.id if self._module_global(base.id) else None
            elif isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name):
                # module_alias._GLOBAL.mutate(...)
                recv = base.value.id
                target = self.info.local_imports.get(recv) \
                    or self.mod.imports.get(recv)
                if target is not None and ":" not in target and \
                        target in self.project.modules:
                    ginfo = self.project.modules[target].globals.get(
                        base.attr
                    )
                    if ginfo is not None and not ginfo.is_function \
                            and not ginfo.is_class:
                        name = f"{recv}.{base.attr}"
            if name is not None:
                self._flag(
                    "AQ502", node,
                    f"mutating call {name}.{func.attr}(...) on "
                    "module-level state from worker-reachable code "
                    "without a lock",
                )
        self.generic_visit(node)


def run_races_pass(
    project: Project, worker_reachable: set[str]
) -> list[LintDiagnostic]:
    out: list[LintDiagnostic] = []
    for info in project.functions_in_scope(worker_reachable):
        visitor = _RaceVisitor(info, project, out)
        # two passes over the body: `global` declarations first, so a
        # later visit of an earlier assignment still sees them
        for stmt in info.node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Global):
                    visitor.global_names.update(sub.names)
        for stmt in info.node.body:
            visitor.visit(stmt)
    return out
