"""Pass 2 — fork/pickle-boundary verification (AQ510–AQ513).

Everything crossing the :class:`~repro.engine.procpool.ProcessPool`
dispatch/return boundary is pickled.  On a fork platform a violation
only surfaces at runtime, as an opaque ``PicklingError`` from a worker
— this pass rejects the shapes that can never cross, statically:

- ``AQ510`` — a ``lambda`` in a shipped value;
- ``AQ511`` — a known-unpicklable capture in a shipped value: tracers,
  injectors, locks, string heaps, pipe connections, thread-local state
  (by attribute/name deny-list, plus ``get_tracer()`` /
  ``get_fault_injector()`` / ``Lock()`` calls);
- ``AQ512`` — a nested function (closure) in a shipped value;
- ``AQ513`` — a ``Process(target=...)`` whose target is not a plain
  module-level function.

Boundary sites are recognised syntactically: ``<conn-ish>.send(...)``
(the receiver's last name component is ``conn``-like), ``<pool-ish>
.run(...)``, and ``Process(...)`` constructions.  Shipped-value
expressions are traversed structurally — through tuples, lists,
dicts, comprehension elements, conditional arms, starred elements and
single-assignment local names — but **not** into arbitrary call
arguments: a call's *result* crosses the boundary, not its operands,
so ``pool.run(requests, batch_opts(self.tracer))`` is clean while
``pool.run([("morsel", self.tracer, b) for b in batches])`` is not.
"""

from __future__ import annotations

import ast

from repro.analysis.conccheck.model import (
    FuncInfo,
    Project,
    _receiver_text,
)
from repro.analysis.conccheck.report import LintDiagnostic, lint_diag

__all__ = [
    "UNPICKLABLE_CALLS",
    "UNPICKLABLE_NAMES",
    "run_boundary_pass",
]

# Attribute / bare-name components that denote unpicklable runtime
# state in this codebase's vocabulary.
UNPICKLABLE_NAMES = frozenset({
    "tracer", "_tracer", "injector", "_injector", "lock", "_lock",
    "heap", "_heap", "conn", "_conn", "_local", "_queues", "proc",
})

# Calls whose result is ambient/unpicklable state.
UNPICKLABLE_CALLS = frozenset({
    "get_tracer", "get_fault_injector", "Lock", "RLock", "Condition",
    "Semaphore", "SimpleQueue", "Queue", "Pipe", "local",
})

_CONTAINER_CALLS = frozenset({"tuple", "list", "dict", "set"})


def _is_connish(receiver: str | None) -> bool:
    if not receiver:
        return False
    last = receiver.rsplit(".", 1)[-1]
    return last == "conn" or last.endswith("_conn") or \
        last.startswith("conn")


def _is_poolish(receiver: str | None) -> bool:
    if not receiver:
        return False
    last = receiver.rsplit(".", 1)[-1]
    return last == "pool" or last.endswith("_pool") or \
        last.endswith("pool")


class _ShippedValueChecker:
    """Structural walk over an expression that will be pickled."""

    def __init__(self, info: FuncInfo, project: Project,
                 out: list[LintDiagnostic]) -> None:
        self.info = info
        self.project = project
        self.mod = project.module_of(info)
        self.out = out
        self._followed: set[str] = set()
        # single-assignment map: local name -> value expression
        self._bindings: dict[str, ast.AST] = {}
        self._multi: set[str] = set()
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, ast.Assign) or \
                    len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                if target.id in self._bindings:
                    self._multi.add(target.id)
                self._bindings[target.id] = stmt.value

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        if self.mod.is_safe_line(node.lineno):
            return
        self.out.append(lint_diag(
            code, message, path=self.info.path, node=node,
            symbol=self.info.qualname,
        ))

    def check(self, expr: ast.AST) -> None:
        if isinstance(expr, ast.Lambda):
            self._flag(
                "AQ510", expr,
                "lambda crosses the process boundary: lambdas cannot "
                "be pickled",
            )
        elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self.check(elt)
        elif isinstance(expr, ast.Starred):
            self.check(expr.value)
        elif isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.check(key)
            for value in expr.values:
                self.check(value)
        elif isinstance(expr, (ast.ListComp, ast.SetComp,
                               ast.GeneratorExp)):
            self.check(expr.elt)
        elif isinstance(expr, ast.DictComp):
            self.check(expr.key)
            self.check(expr.value)
        elif isinstance(expr, ast.IfExp):
            self.check(expr.body)
            self.check(expr.orelse)
        elif isinstance(expr, ast.Call):
            self._check_call(expr)
        elif isinstance(expr, ast.Name):
            self._check_name(expr)
        elif isinstance(expr, ast.Attribute):
            self._check_attr(expr)
        # constants, subscripts of unknowns, binops: no verdict

    def _check_call(self, expr: ast.Call) -> None:
        func = expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in UNPICKLABLE_CALLS:
            self._flag(
                "AQ511", expr,
                f"result of {name}(...) crosses the process boundary "
                "but is ambient/unpicklable state",
            )
        elif name in _CONTAINER_CALLS:
            for arg in expr.args:
                self.check(arg)
        # any other call: its operands do not cross, stop here

    def _check_name(self, expr: ast.Name) -> None:
        name = expr.id
        if name in UNPICKLABLE_NAMES:
            self._flag(
                "AQ511", expr,
                f"{name!r} crosses the process boundary but names "
                "unpicklable runtime state",
            )
            return
        if name in self.info.nested:
            self._flag(
                "AQ512", expr,
                f"nested function {name!r} crosses the process "
                "boundary: closures cannot be pickled",
            )
            return
        if name in self._bindings and name not in self._multi and \
                name not in self._followed:
            self._followed.add(name)  # cycle guard
            self.check(self._bindings[name])

    def _check_attr(self, expr: ast.Attribute) -> None:
        if expr.attr in UNPICKLABLE_NAMES:
            text = _receiver_text(expr) or expr.attr
            self._flag(
                "AQ511", expr,
                f"{text!r} crosses the process boundary but names "
                "unpicklable runtime state",
            )


def _check_process_target(
    info: FuncInfo, project: Project, call: ast.Call,
    out: list[LintDiagnostic],
) -> None:
    mod = project.module_of(info)
    for kw in call.keywords:
        if kw.arg == "target":
            target = kw.value
            ok = False
            if isinstance(target, ast.Name):
                ginfo = mod.globals.get(target.id)
                resolved = info.local_imports.get(target.id) \
                    or mod.imports.get(target.id)
                ok = bool(
                    (ginfo is not None and ginfo.is_function)
                    or (resolved is not None and ":" in resolved)
                )
            if not ok and not mod.is_safe_line(kw.value.lineno):
                out.append(lint_diag(
                    "AQ513",
                    "Process target must be a module-level function "
                    "(bound methods, lambdas and closures cannot be "
                    "pickled and break fork/spawn portability)",
                    path=info.path, node=kw.value,
                    symbol=info.qualname,
                ))
        elif kw.arg == "args":
            checker = _ShippedValueChecker(info, project, out)
            checker.check(kw.value)


def run_boundary_pass(
    project: Project, scope: set[str] | None = None
) -> list[LintDiagnostic]:
    """Scan boundary call sites; ``scope=None`` means every function."""
    out: list[LintDiagnostic] = []
    quals = scope if scope is not None else set(project.functions)
    for info in project.functions_in_scope(quals):
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver = _receiver_text(func.value)
                if func.attr == "send" and _is_connish(receiver):
                    checker = _ShippedValueChecker(info, project, out)
                    for arg in node.args:
                        checker.check(arg)
                elif func.attr == "run" and _is_poolish(receiver):
                    checker = _ShippedValueChecker(info, project, out)
                    for arg in node.args:
                        checker.check(arg)
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name == "Process":
                _check_process_target(info, project, node, out)
    return out
