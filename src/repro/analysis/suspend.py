"""Static suspend prediction (pass 2).

Classifies each real :class:`~repro.core.compiler.SuspendReason` as
NEVER / ALWAYS / DEPENDS **before execution**, from the compiled offload
decisions, catalog statistics (row counts, per-column distinct counts,
heap sizes) and the :class:`~repro.core.device.DeviceConfig` budgets:

- ``MID_PLAN_GROUPBY`` and ``STRING_HEAP`` are compile-time facts: the
  compiler's per-node reasons propagate into the simulator's final
  reason set unconditionally, and the runtime heap guard applies the
  same ``effective_heap_bytes`` rule the compiler already applied — so
  these are exactly ALWAYS (reason present in the compiled plan) or
  NEVER.
- ``GROUP_SPILL`` is bounded per hash-aggregate from group-count
  bounds (distinct-count statistics through a provenance walk).  Two
  proofs tighten the bracket to NEVER/ALWAYS: a *collision-freedom*
  proof that enumerates the candidate composite-key domain, zips it
  with the Column Zipper's own packing and hashes it into the 1024
  buckets; and an *exact-count* proof when the aggregate's input chain
  is rename-only over a base scan, making the spilled-group count
  ``max(0, NDV - 1024)`` deterministic (the Q17/Q18 assisted mode).
- ``DRAM_EXCEEDED`` sums worst-case build/pair allocations over every
  device-executed join (statically skipping joins the MonetDB
  join-index shortcut serves without DRAM) and compares against the
  scaled capacity; if even the simultaneous worst case fits, the
  verdict is NEVER.

DEPENDS verdicts carry a ``[lo, hi]`` bracket that must contain the
observed value (spilled groups / peak effective DRAM bytes) — the
cross-validation contract ``tests/test_analysis.py`` enforces on all
22 TPC-H queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

import numpy as np

from repro.analysis.diagnostics import Diagnostic, Severity, diag
from repro.analysis.typecheck import TypeChecker
from repro.core.compiler import (
    CompiledQuery,
    QueryCompiler,
    SuspendReason,
)
from repro.core.swissknife.groupby import (
    HASH_BUCKETS,
    MAX_GROUP_ID_BYTES,
    bucket_of,
    zip_group_columns,
)
from repro.sqlir.expr import ColumnRef, Expr, Kind, ScalarSubquery
from repro.sqlir.plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinKind,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
)

__all__ = [
    "Verdict",
    "SuspendPrediction",
    "SuspendPredictor",
    "subtree_reduces",
    "column_ndv",
]

# Give up on the collision-freedom proof beyond this candidate-domain
# size: enumeration cost grows with the cross product while the chance
# of 1024 buckets staying collision-free shrinks.
_PROOF_DOMAIN_LIMIT = 4096
_UNBOUNDED = 10**18

_REASON_CODES = {
    SuspendReason.MID_PLAN_GROUPBY: "AQ201",
    SuspendReason.STRING_HEAP: "AQ202",
    SuspendReason.GROUP_SPILL: "AQ203",
    SuspendReason.DRAM_EXCEEDED: "AQ204",
}


def subtree_reduces(plan: Plan) -> bool:
    """Worth offloading only if the subtree reduces or transforms data
    beyond column renames (a bare streamed scan saves the host
    nothing — the bytes still transit host memory)."""
    return any(
        isinstance(node, (Filter, Join, Aggregate, Distinct))
        for node in plan.walk()
    )


class Verdict(Enum):
    NEVER = "never"
    ALWAYS = "always"
    DEPENDS = "depends"


@dataclass
class SuspendPrediction:
    """Static verdict for one suspension reason over a whole query."""

    reason: SuspendReason
    verdict: Verdict
    lo: float = 0
    hi: float | None = 0  # None = no static bound
    unit: str = ""
    detail: str = ""

    def describe(self) -> str:
        text = self.verdict.value.upper()
        if self.verdict is not Verdict.NEVER and self.unit:
            hi = "?" if self.hi is None else f"{self.hi:g}"
            text += f" [{self.lo:g}, {hi}] {self.unit}"
        if self.detail:
            text += f" — {self.detail}"
        return text

    def to_json(self) -> dict:
        return {
            "reason": self.reason.value,
            "verdict": self.verdict.value,
            "lo": self.lo,
            "hi": self.hi,
            "unit": self.unit,
            "detail": self.detail,
        }


# ---------------------------------------------------------------------------
# Catalog statistics (cached on the catalog instance)
# ---------------------------------------------------------------------------


def _stats_cache(catalog: Any) -> dict:
    cache = getattr(catalog, "_analysis_stats_cache", None)
    if cache is None:
        cache = {}
        catalog._analysis_stats_cache = cache
    return cache


def column_ndv(catalog: Any, table: str, column: str) -> int:
    """Number of distinct values in a base column (cached)."""
    cache = _stats_cache(catalog)
    key = ("ndv", table, column)
    if key not in cache:
        col = catalog.table(table).column(column)
        if col.heap is not None:
            cache[key] = col.heap.unique_count
        else:
            cache[key] = int(len(np.unique(col.values)))
    return cache[key]


def _column_domain(catalog: Any, table: str,
                   column: str) -> np.ndarray:
    """Distinct raw values of a base column, as the zipper sees them
    (heap codes for strings)."""
    cache = _stats_cache(catalog)
    key = ("domain", table, column)
    if key not in cache:
        col = catalog.table(table).column(column)
        if col.heap is not None:
            cache[key] = np.arange(col.heap.unique_count, dtype=np.int64)
        else:
            cache[key] = np.unique(col.values.astype(np.int64))
    return cache[key]


# ---------------------------------------------------------------------------
# Cardinality bounds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Card:
    """Row-count bounds for a plan node's output."""

    lo: int
    hi: int
    exact: bool  # lo == hi == the true count


class SuspendPredictor:
    """Walks a compiled plan and predicts every real suspension."""

    def __init__(self, catalog: Any, config: Any) -> None:
        self.catalog = catalog
        self.config = config
        self.checker = TypeChecker(catalog, collect=False)
        self._cards: dict[int, Card] = {}
        self._provs: dict[int, dict[str, tuple[str, str]]] = {}

    # -- public entry ------------------------------------------------------

    def predict(
        self, plan: Plan, compiled: CompiledQuery | None = None
    ) -> tuple[dict[str, SuspendPrediction], list[Diagnostic]]:
        if compiled is None:
            compiled = QueryCompiler(
                self.catalog, scale_ratio=self.config.scale_ratio
            ).compile(plan)
        units = compiled.flatten()
        roots: set[int] = set()
        executed_roots: list[Plan] = []
        for unit in units:
            for root in unit.offload_roots():
                roots.add(id(root))
                decision = unit.decisions[id(root)]
                if subtree_reduces(root) or decision.stream_for_assist:
                    executed_roots.append(root)

        compiled_reasons = compiled.suspend_reasons()
        predictions = {
            SuspendReason.MID_PLAN_GROUPBY.name: self._compile_time(
                SuspendReason.MID_PLAN_GROUPBY, compiled_reasons, units
            ),
            SuspendReason.STRING_HEAP.name: self._compile_time(
                SuspendReason.STRING_HEAP, compiled_reasons, units
            ),
            SuspendReason.GROUP_SPILL.name: self._predict_spill(
                units, roots, executed_roots
            ),
            SuspendReason.DRAM_EXCEEDED.name: self._predict_dram(
                executed_roots
            ),
        }
        diagnostics = [
            d
            for p in predictions.values()
            if (d := self._prediction_diag(p)) is not None
        ]
        return predictions, diagnostics

    def _prediction_diag(self, p: SuspendPrediction) -> Diagnostic | None:
        if p.verdict is Verdict.NEVER:
            return None
        severity = (
            Severity.WARNING if p.verdict is Verdict.ALWAYS else Severity.INFO
        )
        return diag(
            _REASON_CODES[p.reason],
            severity,
            f"{p.reason.value}: {p.describe()}",
        )

    # -- compile-time reasons ---------------------------------------------

    def _compile_time(
        self,
        reason: SuspendReason,
        compiled_reasons: set[SuspendReason],
        units: list[CompiledQuery],
    ) -> SuspendPrediction:
        if reason not in compiled_reasons:
            return SuspendPrediction(reason, Verdict.NEVER)
        notes = []
        for unit in units:
            for node in unit.plan.walk():
                decision = unit.decisions.get(id(node))
                if decision is not None and decision.reason is reason:
                    notes.append(f"{node!r}: {decision.note}")
        return SuspendPrediction(
            reason,
            Verdict.ALWAYS,
            detail="; ".join(notes[:3]),
        )

    # -- group spill -------------------------------------------------------

    def _predict_spill(
        self,
        units: list[CompiledQuery],
        roots: set[int],
        executed_roots: list[Plan],
    ) -> SuspendPrediction:
        verdicts: list[tuple[Verdict, int, int, str]] = []

        seen: set[int] = set()
        for root in executed_roots:
            for node in root.walk():
                if (
                    isinstance(node, Aggregate)
                    and node.keys
                    and id(node) not in seen
                ):
                    seen.add(id(node))
                    verdicts.append(self._device_agg_spill(node, root))
        for unit in units:
            for node in unit.plan.walk():
                decision = unit.decisions.get(id(node))
                if (
                    isinstance(node, Aggregate)
                    and decision is not None
                    and decision.device_assisted
                    and id(node.child) in roots
                    and id(node) not in seen
                ):
                    seen.add(id(node))
                    verdicts.append(self._assisted_agg_spill(node))

        reason = SuspendReason.GROUP_SPILL
        if not verdicts:
            return SuspendPrediction(
                reason, Verdict.NEVER, detail="no device-side hash aggregate"
            )
        lo = sum(v[1] for v in verdicts)
        hi = sum(v[2] for v in verdicts)
        details = "; ".join(v[3] for v in verdicts if v[3])
        if any(v[0] is Verdict.ALWAYS for v in verdicts):
            return SuspendPrediction(
                reason, Verdict.ALWAYS, lo, hi, "spilled groups", details
            )
        if all(v[0] is Verdict.NEVER for v in verdicts):
            return SuspendPrediction(reason, Verdict.NEVER, detail=details)
        return SuspendPrediction(
            reason, Verdict.DEPENDS, lo, hi, "spilled groups", details
        )

    def _device_agg_spill(
        self, agg: Aggregate, root: Plan
    ) -> tuple[Verdict, int, int, str]:
        """Spill bounds for a keyed aggregate the device hash-executes."""
        g_lo, g_hi, g_exact = self._group_bounds(agg)
        widths = self._key_widths(agg)
        label = f"device hash agg {agg!r}"
        if widths is None:
            return (Verdict.DEPENDS, 0, g_hi, f"{label}: unknown key kinds")
        id_bytes = sum(widths)
        if id_bytes > MAX_GROUP_ID_BYTES:
            # Wider than the zipper: every present group spills.  The
            # count only sticks when the root cannot roll back its
            # meters via a DRAM abort (no joins below the root).
            rollback = any(isinstance(n, Join) for n in root.walk())
            if g_exact and not rollback:
                return (
                    Verdict.ALWAYS if g_lo > 0 else Verdict.NEVER,
                    g_lo,
                    g_hi,
                    f"{label}: {id_bytes}B id > {MAX_GROUP_ID_BYTES}B, "
                    f"all {g_lo} groups spill",
                )
            return (
                Verdict.DEPENDS,
                0,
                g_hi,
                f"{label}: {id_bytes}B id > {MAX_GROUP_ID_BYTES}B, "
                "every present group spills",
            )
        if id_bytes <= 8 and self._collision_free(agg, widths):
            return (
                Verdict.NEVER,
                0,
                0,
                f"{label}: key domain hashes collision-free into "
                f"{HASH_BUCKETS} buckets",
            )
        if g_hi <= 1:
            return (Verdict.NEVER, 0, 0, f"{label}: at most one group")
        return (
            Verdict.DEPENDS,
            0,
            g_hi,
            f"{label}: up to {g_hi} groups may collide",
        )

    def _assisted_agg_spill(
        self, agg: Aggregate
    ) -> tuple[Verdict, int, int, str]:
        """Assisted (Q17/Q18-mode) spill: deterministic
        ``max(0, groups - HASH_BUCKETS)``."""
        g_lo, g_hi, g_exact = self._group_bounds(agg)
        label = f"assisted agg {agg!r}"
        if g_exact:
            spill = max(0, g_lo - HASH_BUCKETS)
            return (
                Verdict.ALWAYS if spill > 0 else Verdict.NEVER,
                spill,
                spill,
                f"{label}: exactly {g_lo} groups vs {HASH_BUCKETS} "
                "buckets",
            )
        if g_hi <= HASH_BUCKETS:
            return (
                Verdict.NEVER,
                0,
                0,
                f"{label}: at most {g_hi} groups fit {HASH_BUCKETS} "
                "buckets",
            )
        return (
            Verdict.DEPENDS,
            max(0, g_lo - HASH_BUCKETS),
            g_hi - HASH_BUCKETS,
            f"{label}: between {g_lo} and {g_hi} groups",
        )

    def _key_widths(self, agg: Aggregate) -> list[int] | None:
        schema = self.checker.schema_of(agg.child)
        if schema is None:
            return None
        widths = []
        for key in agg.keys:
            meta = schema.get(key)
            if meta is None:
                return None
            widths.append(4 if meta.kind is Kind.STR else 8)
        return widths

    def _collision_free(self, agg: Aggregate, widths: list[int]) -> bool:
        """Prove no two candidate composite keys share a hash bucket.

        Enumerates the cross product of each key's base-column domain (a
        superset of the groups any filtered run can produce), packs it
        with the runtime's own Column Zipper, and hashes with the
        runtime's own bucket function — if all candidate buckets are
        distinct, no data subset can ever collide.
        """
        domains = []
        total = 1
        for key in agg.keys:
            source = self._key_base(agg.child, key)
            if source is None:
                return False
            table, column = source
            domain = _column_domain(self.catalog, table, column)
            total *= max(1, len(domain))
            if total > _PROOF_DOMAIN_LIMIT:
                return False
            domains.append(domain)
        if total == 0:
            return True
        grids = np.meshgrid(*domains, indexing="ij")
        columns = [g.reshape(-1).astype(np.int64) for g in grids]
        zipped, id_bytes = zip_group_columns(columns, widths)
        if id_bytes > 8:
            # The wide-id surrogate numbering depends on which tuples
            # are present at runtime; not provable from the domain.
            return False
        buckets = bucket_of(zipped, HASH_BUCKETS)
        return len(np.unique(buckets)) == len(zipped)

    # -- group-count bounds ------------------------------------------------

    def _group_bounds(self, agg: Aggregate) -> tuple[int, int, bool]:
        """(lo, hi, exact) bounds on the aggregate's group count."""
        card = self._card(agg.child)
        if not agg.keys:
            return (1 if card.lo > 0 else 0, 1, card.lo > 0)
        if len(agg.keys) == 1:
            base = self._rename_only_base(agg.child, agg.keys[0])
            if base is not None:
                ndv = column_ndv(self.catalog, *base)
                return (ndv, ndv, True)
        hi = card.hi
        product = 1
        for key in agg.keys:
            key_hi = self._key_ndv_hi(agg.child, key)
            if key_hi is None:
                product = None
                break
            product = min(_UNBOUNDED, product * key_hi)
        if product is not None:
            hi = min(hi, product)
        return (1 if card.lo > 0 else 0, hi, False)

    def _key_base(self, node: Plan, name: str) -> tuple[str, str] | None:
        """Resolve ``name`` to a base (table, column) through renames,
        filters, joins and aggregate keys — multiplicity-agnostic, so
        the base column's domain is a superset of the key's values."""
        if isinstance(node, (Filter, Sort, Limit, Distinct)):
            return self._key_base(node.child, name)
        if isinstance(node, Project):
            for out_name, expr in node.outputs:
                if out_name == name:
                    if isinstance(expr, ColumnRef):
                        return self._key_base(node.child, expr.name)
                    return None
            return None
        if isinstance(node, Scan):
            table = self._table(node.table)
            if table is not None and table.has_column(name):
                if node.columns is None or name in node.columns:
                    return (node.table, name)
            return None
        if isinstance(node, Join):
            found = self._key_base(node.left, name)
            if found is None and node.kind in (
                JoinKind.INNER,
                JoinKind.LEFT_OUTER,
            ):
                found = self._key_base(node.right, name)
            return found
        if isinstance(node, Aggregate):
            if name in node.keys:
                return self._key_base(node.child, name)
            return None
        return None

    def _key_ndv_hi(self, node: Plan, name: str) -> int | None:
        """Upper bound on the key column's distinct count, following
        computed expressions (NDV(f(x, y)) <= NDV(x) * NDV(y))."""
        base = self._key_base(node, name)
        if base is not None:
            return column_ndv(self.catalog, *base)
        # A computed Project output: bound by its referenced columns.
        expr_source = self._key_expr(node, name)
        if expr_source is None:
            return None
        expr, below = expr_source
        return self._expr_ndv_hi(expr, below)

    def _key_expr(self, node: Plan, name: str) -> Any:
        if isinstance(node, (Filter, Sort, Limit, Distinct)):
            return self._key_expr(node.child, name)
        if isinstance(node, Project):
            for out_name, expr in node.outputs:
                if out_name == name:
                    if isinstance(expr, ColumnRef):
                        return self._key_expr(node.child, expr.name)
                    return (expr, node.child)
            return None
        if isinstance(node, Join):
            found = self._key_expr(node.left, name)
            if found is None and node.kind in (
                JoinKind.INNER,
                JoinKind.LEFT_OUTER,
            ):
                found = self._key_expr(node.right, name)
            return found
        return None

    def _expr_ndv_hi(self, expr: Expr, below: Plan) -> int | None:
        if isinstance(expr, ScalarSubquery):
            return 1  # broadcast constant
        refs = expr.column_refs()
        if not refs:
            return 1
        product = 1
        for ref in refs:
            base = self._key_base(below, ref)
            if base is None:
                return None
            product = min(
                _UNBOUNDED, product * column_ndv(self.catalog, *base)
            )
        return product

    def _rename_only_base(
        self, node: Plan, name: str
    ) -> tuple[str, str] | None:
        """Base column for ``name`` when the chain below preserves the
        base column's row multiset exactly (rename-only Projects over a
        scan) — the condition under which NDV is *exact*."""
        if isinstance(node, Project):
            for out_name, expr in node.outputs:
                if out_name == name and isinstance(expr, ColumnRef):
                    return self._rename_only_base(node.child, expr.name)
            return None
        if isinstance(node, Scan):
            table = self._table(node.table)
            if table is not None and table.has_column(name):
                if node.columns is None or name in node.columns:
                    return (node.table, name)
        return None

    # -- cardinalities -----------------------------------------------------

    def _table(self, name: str) -> Any:
        try:
            return self.catalog.table(name)
        except KeyError:
            return None

    def _card(self, node: Plan) -> Card:
        cached = self._cards.get(id(node))
        if cached is not None:
            return cached
        card = self._card_of(node)
        self._cards[id(node)] = card
        return card

    def _card_of(self, node: Plan) -> Card:
        if isinstance(node, Scan):
            table = self._table(node.table)
            if table is None:
                return Card(0, _UNBOUNDED, False)
            return Card(table.nrows, table.nrows, True)
        if isinstance(node, Filter):
            return Card(0, self._card(node.child).hi, False)
        if isinstance(node, (Project, Sort)):
            return self._card(node.child)
        if isinstance(node, Limit):
            child = self._card(node.child)
            count = max(0, node.count)
            return Card(
                min(child.lo, count), min(child.hi, count), child.exact
            )
        if isinstance(node, Distinct):
            child = self._card(node.child)
            return Card(1 if child.lo > 0 else 0, child.hi, False)
        if isinstance(node, Aggregate):
            lo, hi, exact = self._group_bounds(node)
            if node.having is not None:
                return Card(0, hi, False)
            return Card(lo, hi, exact)
        if isinstance(node, Join):
            return self._card_join(node)
        return Card(0, _UNBOUNDED, False)

    def _card_join(self, node: Join) -> Card:
        left = self._card(node.left)
        right = self._card(node.right)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            return Card(0, left.hi, False)
        pairs_hi = self._pairs_hi(node, left, right)
        if node.kind is JoinKind.LEFT_OUTER:
            return Card(
                left.lo, min(_UNBOUNDED, pairs_hi + left.hi), False
            )
        if node.residual is None and self._fk_guaranteed(node):
            # Referential integrity: every left row matches exactly one
            # row of the whole referenced table.
            return Card(left.lo, left.hi, left.exact)
        return Card(0, pairs_hi, False)

    def _pairs_hi(self, node: Join, left: Card, right: Card) -> int:
        if self._key_is_unique(node.right, node.right_key):
            return left.hi
        if self._key_is_unique(node.left, node.left_key):
            return right.hi
        return min(_UNBOUNDED, left.hi * right.hi)

    def _key_is_unique(self, node: Plan, key: str) -> bool:
        """Each value of ``key`` occurs at most once in ``node``'s
        output (sound; incomplete)."""
        if isinstance(node, (Filter, Sort, Limit)):
            return self._key_is_unique(node.child, key)
        if isinstance(node, Distinct):
            schema = self.checker.schema_of(node)
            return (
                schema is not None
                and len(schema) == 1
                and key in schema
            )
        if isinstance(node, Project):
            for name, expr in node.outputs:
                if name == key:
                    if isinstance(expr, ColumnRef):
                        return self._key_is_unique(node.child, expr.name)
                    return False
            return False
        if isinstance(node, Aggregate):
            return node.keys == (key,)
        if isinstance(node, Scan):
            return self.catalog.primary_key(node.table) == key
        if isinstance(node, Join) and node.kind in (
            JoinKind.SEMI,
            JoinKind.ANTI,
        ):
            return self._key_is_unique(node.left, key)
        return False

    def _fk_guaranteed(self, node: Join) -> bool:
        """Left key is a foreign key and the right side is the whole,
        unfiltered referenced table."""
        source = self._key_base(node.left, node.left_key)
        if source is None:
            return False
        fk = self.catalog.foreign_key_for(*source)
        if fk is None:
            return False
        whole = self._whole_scan(node.right, allow_filter=False)
        if whole != fk.ref_table:
            return False
        right_base = self._key_base(node.right, node.right_key)
        return right_base == (fk.ref_table, fk.ref_column)

    def _whole_scan(self, node: Plan, allow_filter: bool) -> str | None:
        """Table name when ``node`` is a (rename-only) scan chain of one
        base table; ``allow_filter`` admits filters (the rows are then a
        *subset* rather than the whole table)."""
        if isinstance(node, Scan):
            return node.table
        if isinstance(node, Project):
            if all(isinstance(e, ColumnRef) for _, e in node.outputs):
                return self._whole_scan(node.child, allow_filter)
            return None
        if allow_filter and isinstance(node, Filter):
            return self._whole_scan(node.child, allow_filter)
        return None

    # -- DRAM --------------------------------------------------------------

    def _predict_dram(
        self, executed_roots: list[Plan]
    ) -> SuspendPrediction:
        reason = SuspendReason.DRAM_EXCEEDED
        ratio = self.config.scale_ratio
        capacity = self.config.dram_bytes
        total_hi = 0
        always_detail = None
        details: list[str] = []
        n_joins = 0
        seen: set[int] = set()
        for root in executed_roots:
            for node in root.walk():
                if not isinstance(node, Join) or id(node) in seen:
                    continue
                seen.add(id(node))
                if self._join_shortcut(node, certain=True):
                    details.append(
                        f"{node!r}: join-index shortcut, no DRAM"
                    )
                    continue
                n_joins += 1
                left = self._card(node.left)
                right = self._card(node.right)
                per_row = (
                    8
                    + (8 if node.kind is JoinKind.INNER else 0)
                    + (8 if node.residual is not None else 0)
                )
                build_hi = max(left.hi, right.hi) * per_row
                pairs_hi = 0
                if node.kind is JoinKind.INNER:
                    pairs_hi = self._pairs_hi(node, left, right) * 16
                total_hi = min(
                    _UNBOUNDED, total_hi + build_hi + pairs_hi
                )
                details.append(
                    f"{node!r}: build<= {build_hi}B, pairs<= {pairs_hi}B"
                )
                if (
                    left.exact
                    and right.exact
                    and not self._join_shortcut(node, certain=False)
                ):
                    need = min(left.hi, right.hi) * per_row * ratio
                    if need > capacity:
                        always_detail = (
                            f"{node!r}: smaller build side needs "
                            f"{need:.3g} effective bytes > capacity "
                            f"{capacity}"
                        )
        if always_detail is not None:
            return SuspendPrediction(
                reason,
                Verdict.ALWAYS,
                0,
                None,
                "effective bytes",
                always_detail,
            )
        if n_joins == 0:
            return SuspendPrediction(
                reason,
                Verdict.NEVER,
                0,
                0,
                "effective bytes",
                "; ".join(details) or "no device-executed join",
            )
        hi_effective = total_hi * ratio
        if hi_effective <= capacity:
            return SuspendPrediction(
                reason,
                Verdict.NEVER,
                0,
                hi_effective,
                "effective bytes",
                "worst-case allocations all fit simultaneously",
            )
        return SuspendPrediction(
            reason,
            Verdict.DEPENDS,
            0,
            hi_effective,
            "effective bytes",
            "; ".join(details[:4]),
        )

    def _join_shortcut(self, node: Join, certain: bool) -> bool:
        """Static mirror of the simulator's ``_try_join_index``.

        ``certain=True`` demands conditions that guarantee the shortcut
        fires (unfiltered referenced side); ``certain=False`` answers
        whether it *could* fire (used to withhold ALWAYS claims)."""
        if node.kind is not JoinKind.INNER or node.residual is not None:
            return False
        source = self._device_origin(node.left).get(node.left_key)
        if source is None:
            return False
        fk = self.catalog.foreign_key_for(*source)
        if fk is None:
            return False
        whole = self._whole_scan(node.right, allow_filter=not certain)
        if whole != fk.ref_table:
            return False
        right_origin = self._device_origin(node.right)
        if right_origin.get(node.right_key) != (
            fk.ref_table,
            fk.ref_column,
        ):
            return False
        # Every right output column must originate in the referenced
        # table (true by construction for a rename-only scan chain).
        return all(
            origin[0] == fk.ref_table for origin in right_origin.values()
        )

    def _device_origin(self, node: Plan) -> dict[str, tuple[str, str]]:
        """Mirror of the device executor's origin propagation."""
        cached = self._provs.get(id(node))
        if cached is not None:
            return cached
        origin: dict[str, tuple[str, str]]
        if isinstance(node, Scan):
            table = self._table(node.table)
            if table is None:
                origin = {}
            else:
                names = (
                    node.columns
                    if node.columns is not None
                    else tuple(table.column_names)
                )
                origin = {
                    n: (node.table, n)
                    for n in names
                    if table.has_column(n)
                }
        elif isinstance(node, (Filter, Sort, Limit)):
            origin = self._device_origin(node.child)
        elif isinstance(node, Project):
            child = self._device_origin(node.child)
            origin = {
                name: child[expr.name]
                for name, expr in node.outputs
                if isinstance(expr, ColumnRef) and expr.name in child
            }
        elif isinstance(node, Join):
            origin = dict(self._device_origin(node.left))
            if node.kind not in (JoinKind.SEMI, JoinKind.ANTI):
                origin.update(self._device_origin(node.right))
        else:  # Aggregate / Distinct outputs are device-materialised
            origin = {}
        self._provs[id(node)] = origin
        return origin
