"""Diagnostic records emitted by the static plan analyzer.

Every finding carries a stable code (``AQnnn``), a severity, and a plan
locus (the ``node_id`` assigned by :func:`repro.sqlir.assign_node_ids`
plus the node's ``repr``), so reports are machine-checkable and human
readable at the same time.

Code taxonomy (see DESIGN.md §6 for the full table):

- ``AQ1xx`` — schema / dtype inference (typecheck pass)
- ``AQ2xx`` — suspend predictions (one code per real SuspendReason)
- ``AQ3xx`` — PE program verification
- ``AQ4xx`` — morsel merge-safety verdicts
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "PlanAnalysisWarning",
    "PlanRejected",
    "Severity",
    "diag",
]


class Severity(Enum):
    ERROR = "error"      # the plan will raise or compute garbage
    WARNING = "warning"  # suspicious / lossy, but executable
    INFO = "info"        # advisory (fallbacks, DEPENDS estimates)

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to a plan node."""

    code: str
    severity: Severity
    message: str
    node_id: int | None = None
    node: str = ""  # repr of the plan node at the locus

    def __str__(self) -> str:
        locus = f" at node {self.node_id} {self.node}" if self.node else ""
        return f"{self.code} [{self.severity.value}]{locus}: {self.message}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "node_id": self.node_id,
            "node": self.node,
        }


class PlanRejected(Exception):
    """Raised by ``Engine(analyze="strict")`` when the analyzer finds
    errors; carries the full report."""

    def __init__(self, report: "AnalysisReport") -> None:
        self.report = report
        lines = [str(d) for d in report.errors()]
        super().__init__(
            "static analysis rejected the plan:\n" + "\n".join(lines)
        )


class PlanAnalysisWarning(UserWarning):
    """Category used by ``Engine(analyze="warn")``."""


@dataclass
class AnalysisReport:
    """Aggregated result of one :func:`repro.analysis.analyze_plan` run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    # reason.name -> SuspendPrediction (filled by the suspend pass)
    suspend: dict = field(default_factory=dict)
    # morsel-safety verdicts (filled by the morsel pass)
    fragments: list = field(default_factory=list)
    n_nodes: int = 0
    passes: tuple[str, ...] = ()

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def ok(self) -> bool:
        return not self.errors()

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "n_nodes": self.n_nodes,
            "passes": list(self.passes),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suspend": {
                name: prediction.to_json()
                for name, prediction in self.suspend.items()
            },
            "fragments": [f.to_json() for f in self.fragments],
        }

    def to_json_str(self) -> str:
        return json.dumps(self.to_json(), indent=2)

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"plan: {self.n_nodes} nodes, passes: {', '.join(self.passes)}"
        ]
        ordered = sorted(
            self.diagnostics, key=lambda d: -d.severity.rank
        )
        if ordered:
            lines.append("diagnostics:")
            lines.extend(f"  {d}" for d in ordered)
        else:
            lines.append("diagnostics: none")
        if self.suspend:
            lines.append("suspend predictions:")
            for name, prediction in self.suspend.items():
                lines.append(f"  {name}: {prediction.describe()}")
        if self.fragments:
            lines.append("morsel fragments:")
            for verdict in self.fragments:
                lines.append(f"  {verdict.describe()}")
        status = "OK" if self.ok else "REJECTED"
        lines.append(
            f"verdict: {status} ({len(self.errors())} errors, "
            f"{len(self.warnings())} warnings)"
        )
        return "\n".join(lines)


def diag(
    code: str,
    severity: Severity,
    message: str,
    node: object = None,
) -> Diagnostic:
    """Build a diagnostic anchored at a plan node (or free-floating)."""
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        node_id=getattr(node, "node_id", None),
        node=repr(node) if node is not None else "",
    )
