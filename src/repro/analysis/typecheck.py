"""Schema and dtype inference over a logical plan (pass 1).

Two layers share one walker:

- **Lenient inference** mirrors :func:`repro.sqlir.expr.evaluate` *exactly*
  — it raises :class:`InferenceError` precisely where evaluation would
  raise, and silently produces the same (possibly garbage) result kind
  where evaluation silently proceeds.  The morsel-safety pass relies on
  this fidelity to reproduce the engine's merge decisions statically.
- **Strict diagnostics** layer on top: constructs that execute but
  compute garbage (string codes in arithmetic, SUM over a string
  column, CASE arms that drop a heap) are reported as ``AQ1xx``
  diagnostics without stopping inference.

The walker never touches column *data* — only catalog metadata — so it
is safe to run before a single page is streamed off flash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.diagnostics import Diagnostic, Severity, diag
from repro.sqlir.expr import (
    AggFunc,
    Arith,
    ArithOp,
    BoolExpr,
    CaseWhen,
    ColumnRef,
    Compare,
    Expr,
    ExtractYear,
    InList,
    Kind,
    Like,
    Literal,
    ScalarSubquery,
    Substring,
    lit,
)
from repro.sqlir.plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    JoinKind,
    Limit,
    Plan,
    Project,
    Scan,
    Sort,
)
from repro.storage.types import TypeKind

__all__ = [
    "ColumnMeta",
    "InferenceError",
    "Schema",
    "TypeChecker",
    "scan_schema",
    "MATCH_FLAG",
]

# Mirror of repro.engine.executor.MATCH_FLAG (analysis must not import
# the engine — see the package layering note in analysis/__init__.py).
MATCH_FLAG = "@matched"


@dataclass(frozen=True)
class ColumnMeta:
    """Static type of one column: evaluation kind, fixed-point scale,
    and whether a string heap travels with it."""

    kind: Kind
    scale: int = 0
    has_heap: bool = False

    def describe(self) -> str:
        heap = "+heap" if self.has_heap else ""
        scale = f"@{self.scale}" if self.scale else ""
        return f"{self.kind.value}{scale}{heap}"


Schema = dict[str, ColumnMeta]

_INT = ColumnMeta(Kind.INT, 0)
_BOOL = ColumnMeta(Kind.BOOL, 0)
_FLOAT = ColumnMeta(Kind.FLOAT, 0)


class InferenceError(Exception):
    """Static counterpart of the exception ``evaluate()`` would raise."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def scan_schema(table: Any) -> Schema:
    """Static image of ``engine.relation.typed_array_from_column``."""
    schema: Schema = {}
    for name in table.column_names:
        kind = table.column(name).ctype.kind
        if kind is TypeKind.CHAR:
            schema[name] = ColumnMeta(Kind.STR, 0, has_heap=True)
        elif kind is TypeKind.DECIMAL:
            schema[name] = ColumnMeta(Kind.INT, 2)
        elif kind is TypeKind.BOOL:
            schema[name] = _BOOL
        else:
            schema[name] = _INT
    return schema


class TypeChecker:
    """Infers per-node output schemas and collects diagnostics."""

    def __init__(self, catalog: Any, collect: bool = True) -> None:
        self.catalog = catalog
        self.collect = collect
        self.diagnostics: list[Diagnostic] = []
        self._schemas: dict[int, Schema | None] = {}

    # -- reporting ---------------------------------------------------------

    def _emit(self, code: str, severity: Severity, message: str,
              node: object) -> None:
        if self.collect:
            self.diagnostics.append(diag(code, severity, message, node))

    def _emit_d(self, d: Diagnostic) -> None:
        if self.collect:
            self.diagnostics.append(d)

    # -- plan-level inference ---------------------------------------------

    def schema_of(self, plan: Plan) -> Schema | None:
        """Output schema of ``plan``; ``None`` below an unknown table."""
        # conc: safe — schema memo keyed by node identity; the plan
        # tree and the memo live and die in one process
        cached = self._schemas.get(id(plan))
        if cached is not None or id(plan) in self._schemas:  # conc: safe
            return cached
        schema = self._infer_node(plan)
        self._schemas[id(plan)] = schema  # conc: safe — same memo
        return schema

    def check(self, plan: Plan) -> Schema | None:
        """Typecheck the whole tree (including scalar subqueries)."""
        return self.schema_of(plan)

    def _infer_node(self, plan: Plan) -> Schema | None:
        if isinstance(plan, Scan):
            return self._infer_scan(plan)
        if isinstance(plan, Filter):
            schema = self.schema_of(plan.child)
            if schema is not None:
                meta = self._expr_meta(plan.predicate, schema, plan)
                if meta is not None and meta.kind is not Kind.BOOL:
                    self._emit(
                        "AQ106",
                        Severity.WARNING,
                        f"filter predicate has kind {meta.kind.value}, "
                        "not bool; rows kept by nonzero-ness",
                        plan,
                    )
            return schema
        if isinstance(plan, Project):
            return self._infer_project(plan)
        if isinstance(plan, Join):
            return self._infer_join(plan)
        if isinstance(plan, Aggregate):
            return self._infer_aggregate(plan)
        if isinstance(plan, Sort):
            return self._infer_sort(plan)
        if isinstance(plan, Limit):
            if plan.count < 0:
                self._emit(
                    "AQ114",
                    Severity.WARNING,
                    f"negative limit {plan.count} truncates from the end",
                    plan,
                )
            return self.schema_of(plan.child)
        if isinstance(plan, Distinct):
            return self.schema_of(plan.child)
        self._emit(
            "AQ110",
            Severity.ERROR,
            f"unknown plan node {type(plan).__name__}",
            plan,
        )
        return None

    def _infer_scan(self, plan: Scan) -> Schema | None:
        try:
            table = self.catalog.table(plan.table)
        except KeyError:
            self._emit(
                "AQ110",
                Severity.ERROR,
                f"unknown table {plan.table!r}",
                plan,
            )
            return None
        full = scan_schema(table)
        if plan.columns is None:
            return full
        schema: Schema = {}
        for name in plan.columns:
            if name not in full:
                self._emit(
                    "AQ101",
                    Severity.ERROR,
                    f"table {plan.table!r} has no column {name!r}",
                    plan,
                )
                schema[name] = _INT  # placeholder to limit cascades
            else:
                schema[name] = full[name]
        return schema

    def _infer_project(self, plan: Project) -> Schema | None:
        child = self.schema_of(plan.child)
        if child is None:
            return None
        schema: Schema = {}
        for name, expr in plan.outputs:
            if name in schema:
                self._emit(
                    "AQ113",
                    Severity.WARNING,
                    f"duplicate project output {name!r}; last wins",
                    plan,
                )
            meta = self._expr_meta(expr, child, plan)
            schema[name] = meta if meta is not None else _INT
        return schema

    def _infer_join(self, plan: Join) -> Schema | None:
        left = self.schema_of(plan.left)
        right = self.schema_of(plan.right)
        if left is None or right is None:
            return None
        lmeta = left.get(plan.left_key)
        rmeta = right.get(plan.right_key)
        for key, side, meta in (
            (plan.left_key, "left", lmeta),
            (plan.right_key, "right", rmeta),
        ):
            if meta is None:
                self._emit(
                    "AQ101",
                    Severity.ERROR,
                    f"join {side} key {key!r} not in {side} input",
                    plan,
                )
        if lmeta is not None and rmeta is not None:
            if lmeta.kind is not rmeta.kind:
                self._emit(
                    "AQ112",
                    Severity.ERROR,
                    "join key kinds differ: "
                    f"{plan.left_key}:{lmeta.describe()} vs "
                    f"{plan.right_key}:{rmeta.describe()}",
                    plan,
                )
            elif lmeta.scale != rmeta.scale:
                self._emit(
                    "AQ112",
                    Severity.WARNING,
                    "join key scales differ: raw fixed-point values "
                    f"match at different magnitudes ({lmeta.scale} vs "
                    f"{rmeta.scale})",
                    plan,
                )
        if plan.kind in (JoinKind.SEMI, JoinKind.ANTI):
            schema = dict(left)
        else:
            schema = dict(left)
            extra = dict(right)
            if plan.kind is JoinKind.LEFT_OUTER:
                extra[MATCH_FLAG] = _BOOL
            for name, meta in extra.items():
                if name in schema:
                    self._emit(
                        "AQ111",
                        Severity.ERROR,
                        f"join output column collision on {name!r}",
                        plan,
                    )
                schema[name] = meta
        if plan.residual is not None:
            pair = dict(left)
            pair.update(right)
            meta = self._expr_meta(plan.residual, pair, plan)
            if meta is not None and meta.kind is not Kind.BOOL:
                self._emit(
                    "AQ106",
                    Severity.WARNING,
                    f"join residual has kind {meta.kind.value}, not bool",
                    plan,
                )
        return schema

    def _infer_aggregate(self, plan: Aggregate) -> Schema | None:
        child = self.schema_of(plan.child)
        if child is None:
            return None
        schema: Schema = {}
        for key in plan.keys:
            meta = child.get(key)
            if meta is None:
                self._emit(
                    "AQ101",
                    Severity.ERROR,
                    f"group key {key!r} not in aggregate input",
                    plan,
                )
                meta = _INT
            schema[key] = meta
        for spec in plan.aggregates:
            schema[spec.name] = self._agg_meta(spec, child, plan)
        if plan.having is not None:
            meta = self._expr_meta(plan.having, schema, plan)
            if meta is not None and meta.kind is not Kind.BOOL:
                self._emit(
                    "AQ106",
                    Severity.WARNING,
                    f"having clause has kind {meta.kind.value}, not bool",
                    plan,
                )
        return schema

    def _agg_meta(self, spec: Any, child: Schema,
                  plan: object) -> ColumnMeta:
        if spec.expr is None:
            if spec.func is not AggFunc.COUNT:
                self._emit(
                    "AQ103",
                    Severity.ERROR,
                    f"{spec.func.value}() needs an argument expression",
                    plan,
                )
            return _INT
        meta = self._expr_meta(spec.expr, child, plan)
        if meta is None:
            return _INT
        if spec.func in (AggFunc.COUNT, AggFunc.COUNT_DISTINCT):
            return _INT
        if meta.kind is Kind.STR:
            self._emit(
                "AQ103",
                Severity.ERROR,
                f"{spec.func.value}() over a string column aggregates "
                f"heap codes ({spec.name!r})",
                plan,
            )
        if spec.func is AggFunc.AVG:
            return _FLOAT
        # SUM/MIN/MAX keep the input kind and scale but drop any heap.
        return ColumnMeta(meta.kind, meta.scale)

    def _infer_sort(self, plan: Sort) -> Schema | None:
        schema = self.schema_of(plan.child)
        if schema is None:
            return None
        for key in plan.keys:
            meta = schema.get(key.column)
            if meta is None:
                self._emit(
                    "AQ101",
                    Severity.ERROR,
                    f"sort key {key.column!r} not in input",
                    plan,
                )
            elif meta.kind is Kind.STR and not meta.has_heap:
                self._emit(
                    "AQ102",
                    Severity.ERROR,
                    f"sort key {key.column!r} is a string that lost its "
                    "heap; order would be undefined",
                    plan,
                )
        return schema

    # -- expression-level inference ---------------------------------------

    def _expr_meta(self, expr: Expr, schema: Schema,
                   node: object) -> ColumnMeta | None:
        """Strict wrapper: lenient inference + diagnostics, never raises."""
        try:
            return self.infer(expr, schema, node)
        except InferenceError as err:
            self._emit(err.code, Severity.ERROR, err.message, node)
            return None

    def infer(self, expr: Expr, schema: Schema,
              node: object = None) -> ColumnMeta:
        """Lenient inference: raises :class:`InferenceError` exactly
        where ``evaluate()`` would raise at runtime."""
        if isinstance(expr, ColumnRef):
            meta = schema.get(expr.name)
            if meta is None:
                raise InferenceError(
                    "AQ101",
                    f"expression references unknown column {expr.name!r}; "
                    f"available: {sorted(schema)}",
                )
            return meta
        if isinstance(expr, Literal):
            if expr.kind is Kind.STR:
                return ColumnMeta(Kind.STR, 0, has_heap=False)
            return ColumnMeta(expr.kind, expr.scale)
        if isinstance(expr, Arith):
            return self._infer_arith(expr, schema, node)
        if isinstance(expr, Compare):
            return self._infer_compare(expr, schema, node)
        if isinstance(expr, BoolExpr):
            for arg in expr.args:
                self.infer(arg, schema, node)
            return _BOOL
        if isinstance(expr, Like):
            meta = self.infer(expr.column, schema, node)
            if meta.kind is not Kind.STR or not meta.has_heap:
                raise InferenceError(
                    "AQ104", "LIKE requires a string column"
                )
            return _BOOL
        if isinstance(expr, InList):
            return self._infer_in(expr, schema, node)
        if isinstance(expr, CaseWhen):
            return self._infer_case(expr, schema, node)
        if isinstance(expr, ExtractYear):
            meta = self.infer(expr.column, schema, node)
            if meta.kind is not Kind.INT or meta.scale != 0:
                self._emit(
                    "AQ107",
                    Severity.ERROR
                    if meta.kind is Kind.STR
                    else Severity.WARNING,
                    "EXTRACT(year) over a non-date operand "
                    f"({meta.describe()}) decodes garbage epochs",
                    node,
                )
            return _INT
        if isinstance(expr, Substring):
            meta = self.infer(expr.column, schema, node)
            if meta.kind is not Kind.STR or not meta.has_heap:
                raise InferenceError(
                    "AQ104", "SUBSTRING requires a string column"
                )
            return ColumnMeta(Kind.STR, 0, has_heap=True)
        if isinstance(expr, ScalarSubquery):
            return self._infer_subquery(expr, node)
        raise InferenceError(
            "AQ110",
            f"cannot evaluate expression node {type(expr).__name__}",
        )

    def _infer_arith(self, expr: Arith, schema: Schema,
                     node: object) -> ColumnMeta:
        left = self.infer(expr.left, schema, node)
        right = self.infer(expr.right, schema, node)
        for side, meta in (("left", left), ("right", right)):
            if meta.kind is Kind.STR:
                self._emit(
                    "AQ102",
                    Severity.ERROR,
                    f"string {side} operand of {expr.op.value!r} is "
                    "evaluated over heap codes",
                    node,
                )
        if expr.op is ArithOp.DIV:
            return _FLOAT
        if expr.op is ArithOp.MUL:
            if left.kind is Kind.FLOAT or right.kind is Kind.FLOAT:
                return _FLOAT
            return ColumnMeta(Kind.INT, left.scale + right.scale)
        if left.kind is Kind.FLOAT or right.kind is Kind.FLOAT:
            return _FLOAT
        return ColumnMeta(Kind.INT, max(left.scale, right.scale))

    def _infer_compare(self, expr: Compare, schema: Schema,
                       node: object) -> ColumnMeta:
        # Mirror _try_string_compare: a string literal on either side
        # forces the other side to be a heap-backed string expression.
        for column_side, literal_side in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            if (
                isinstance(literal_side, Literal)
                and literal_side.kind is Kind.STR
            ):
                meta = self.infer(column_side, schema, node)
                if meta.kind is not Kind.STR or not meta.has_heap:
                    raise InferenceError(
                        "AQ102",
                        f"string literal {literal_side.raw!r} compared "
                        "against a non-string expression",
                    )
                return _BOOL
        left = self.infer(expr.left, schema, node)
        right = self.infer(expr.right, schema, node)
        if left.kind is Kind.STR and right.kind is Kind.STR:
            if left.has_heap != right.has_heap:
                raise InferenceError(
                    "AQ102",
                    "string comparison where only one side kept its heap",
                )
            if not left.has_heap:
                self._emit(
                    "AQ102",
                    Severity.ERROR,
                    "comparison of heap-less string columns compares "
                    "raw codes",
                    node,
                )
            return _BOOL
        if Kind.STR in (left.kind, right.kind):
            # _align silently compares heap codes against numbers.
            self._emit(
                "AQ102",
                Severity.ERROR,
                f"{expr.op.value!r} compares a string column's heap "
                "codes against a numeric expression",
                node,
            )
        return _BOOL

    def _infer_in(self, expr: InList, schema: Schema,
                  node: object) -> ColumnMeta:
        meta = self.infer(expr.column, schema, node)
        if meta.kind is Kind.STR:
            if not meta.has_heap:
                raise InferenceError(
                    "AQ104", "IN over a string column that lost its heap"
                )
            return _BOOL
        finest = 0
        for option in expr.options:
            if isinstance(option, str):
                raise InferenceError(
                    "AQ102",
                    f"string option {option!r} in IN-list over a "
                    f"{meta.kind.value} column",
                )
            finest = max(finest, lit(option).scale)
        if finest > meta.scale:
            self._emit(
                "AQ105",
                Severity.WARNING,
                f"IN-list literal scale {finest} finer than column "
                f"scale {meta.scale}; fractional digits truncate",
                node,
            )
        return _BOOL

    def _infer_case(self, expr: CaseWhen, schema: Schema,
                    node: object) -> ColumnMeta:
        self.infer(expr.condition, schema, node)
        then = self.infer(expr.then, schema, node)
        otherwise = self.infer(expr.otherwise, schema, node)
        for arm, meta in (("then", then), ("else", otherwise)):
            if meta.kind is Kind.STR:
                self._emit(
                    "AQ102",
                    Severity.ERROR,
                    f"CASE {arm}-arm is a string; the result keeps heap "
                    "codes but drops the heap",
                    node,
                )
        if then.kind is Kind.FLOAT or otherwise.kind is Kind.FLOAT:
            return _FLOAT
        return ColumnMeta(Kind.INT, max(then.scale, otherwise.scale))

    def _infer_subquery(self, expr: ScalarSubquery,
                        node: object) -> ColumnMeta:
        sub_schema = self.schema_of(expr.plan)
        if sub_schema is None:
            return _INT
        if len(sub_schema) != 1:
            self._emit(
                "AQ108",
                Severity.ERROR,
                "scalar subquery must produce exactly one column, got "
                f"{sorted(sub_schema)}",
                node,
            )
            return _INT
        (meta,) = sub_schema.values()
        # Broadcast drops any heap (and strings broadcast as raw codes).
        return ColumnMeta(meta.kind, meta.scale)
