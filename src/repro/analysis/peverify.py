"""PE-program verifier (pass 3).

Checks straight-line PE programs against the paper's Row Transformer
contract (Table II: 10-op ISA, 8 registers with ``rf[0]`` as the stream
port, 8-entry instruction memory, operand FIFO) by abstract one-pass
execution — no PE is instantiated and no data flows.

Verified properties:

- ``AQ301`` register indices within ``0..N_REGISTERS-1``
- ``AQ302`` opcode legality / immediate only on ALU ops
- ``AQ303`` program length within the instruction memory
- ``AQ304`` division by zero reachability (an ``imm == 0`` divisor is
  statically certain; a FIFO divisor is data-dependent — the ALU
  silently yields 0 either way, so these never abort at runtime)
- ``AQ305`` operand-FIFO underflow (runtime ``RuntimeError``)
- ``AQ306`` read of an uninitialised register (runtime ``RuntimeError``)
- ``AQ307`` stream imbalance: inputs not fully consumed / over-consumed,
  or operands left in the FIFO at program end

The verifier accepts *unvalidated* instruction records (anything with
``opcode``/``rd``/``rs``/``imm`` attributes) so that programs
:class:`repro.core.pe.Instruction` would refuse to construct can still
be checked — :class:`RawInstr` is the test fixture for that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.diagnostics import Diagnostic, Severity, diag
from repro.core.pe import _ALU_OPS, DEFAULT_IMEM_SIZE, N_REGISTERS, Opcode

__all__ = [
    "RawInstr",
    "verify_instructions",
    "verify_program",
    "verify_transform_graph",
]


@dataclass
class RawInstr:
    """An unvalidated PE instruction for verifier input."""

    opcode: object
    rd: int = 0
    rs: int = 0
    imm: object = None


def verify_instructions(
    instructions: Any,
    imem_size: int | None = None,
    n_inputs: int | None = None,
    node: object = None,
) -> list[Diagnostic]:
    """Abstractly execute ``instructions`` and report every violation.

    ``n_inputs`` is the number of stream operands one program run pops
    from ``rf[0]``; pass ``None`` when the consumption count is not
    known statically.
    """
    out: list[Diagnostic] = []
    size = DEFAULT_IMEM_SIZE if imem_size is None else imem_size
    if len(instructions) > size:
        out.append(
            diag(
                "AQ303",
                Severity.ERROR,
                f"program of {len(instructions)} instructions exceeds "
                f"the PE's {size}-entry instruction memory",
                node,
            )
        )

    regs_init = [True] + [False] * (N_REGISTERS - 1)  # rf[0] = stream port
    fifo_depth = 0
    pops = 0

    for pc, instr in enumerate(instructions):
        opcode = instr.opcode
        if not isinstance(opcode, Opcode):
            out.append(
                diag(
                    "AQ302",
                    Severity.ERROR,
                    f"pc {pc}: illegal opcode {opcode!r} (not in the "
                    "10-op ISA)",
                    node,
                )
            )
            continue
        bad_reg = False
        for field_name, reg in (("rd", instr.rd), ("rs", instr.rs)):
            if not 0 <= reg < N_REGISTERS:
                out.append(
                    diag(
                        "AQ301",
                        Severity.ERROR,
                        f"pc {pc}: {field_name}={reg} outside the "
                        f"{N_REGISTERS}-register file",
                        node,
                    )
                )
                bad_reg = True
        if instr.imm is not None and opcode not in _ALU_OPS:
            out.append(
                diag(
                    "AQ302",
                    Severity.ERROR,
                    f"pc {pc}: immediate on non-ALU opcode "
                    f"{opcode.name}",
                    node,
                )
            )
        if bad_reg:
            continue

        # Every opcode reads rf[rs] first.
        if instr.rs == 0:
            pops += 1
        elif not regs_init[instr.rs]:
            out.append(
                diag(
                    "AQ306",
                    Severity.ERROR,
                    f"pc {pc}: reads uninitialised register "
                    f"rf[{instr.rs}]",
                    node,
                )
            )
            regs_init[instr.rs] = True  # report once per register

        if opcode in _ALU_OPS:
            if instr.imm is not None:
                if opcode is Opcode.DIV and instr.imm == 0:
                    out.append(
                        diag(
                            "AQ304",
                            Severity.WARNING,
                            f"pc {pc}: DIV by constant 0 — result is "
                            "always 0",
                            node,
                        )
                    )
            else:
                if fifo_depth == 0:
                    out.append(
                        diag(
                            "AQ305",
                            Severity.ERROR,
                            f"pc {pc}: {opcode.name} pops an empty "
                            "operand FIFO",
                            node,
                        )
                    )
                else:
                    fifo_depth -= 1
                if opcode is Opcode.DIV:
                    out.append(
                        diag(
                            "AQ304",
                            Severity.INFO,
                            f"pc {pc}: DIV by a streamed operand; a "
                            "zero divisor yields 0",
                            node,
                        )
                    )
            if instr.rd != 0:
                regs_init[instr.rd] = True
        elif opcode is Opcode.PASS:
            if instr.rd != 0:
                regs_init[instr.rd] = True
        elif opcode is Opcode.COPY:
            fifo_depth += 1
            if instr.rd != 0:
                regs_init[instr.rd] = True
        elif opcode is Opcode.STORE:
            fifo_depth += 1

    if n_inputs is not None and pops != n_inputs:
        out.append(
            diag(
                "AQ307",
                Severity.ERROR,
                f"program pops {pops} stream inputs but the layer "
                f"delivers {n_inputs}",
                node,
            )
        )
    if fifo_depth > 0:
        out.append(
            diag(
                "AQ307",
                Severity.WARNING,
                f"{fifo_depth} operand(s) left in the FIFO at program "
                "end",
                node,
            )
        )
    return out


def verify_program(program: Any,
                   node: object = None) -> list[Diagnostic]:
    """Verify a :class:`repro.core.pe.PEProgram`."""
    return verify_instructions(
        program.instructions, program.imem_size, node=node
    )


def verify_transform_graph(graph: Any,
                           node: object = None) -> list[Diagnostic]:
    """Verify every layer program of a compiled transform graph."""
    out: list[Diagnostic] = []
    for layer in graph.layers:
        out.extend(
            verify_instructions(
                layer.program.instructions,
                layer.program.imem_size,
                n_inputs=len(layer.consume_order),
                node=node,
            )
        )
    return out
