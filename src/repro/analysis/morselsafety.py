"""Morsel merge-safety proofs (pass 4).

Decides — statically — which aggregate fragments merge bit-identically
under :mod:`repro.engine.morsel` parallelism and which need the
monolithic fallback.  The rules are the streaming algebra's:

- COUNT partials add, MIN/MAX partials re-reduce, and SUM partials add
  exactly *only* on the int64 domain;
- float addition is not associative, so AVG and float-valued SUMs would
  change rounding across morsel boundaries (``AQ402``);
- COUNT DISTINCT partials cannot be merged at all (``AQ401``);
- scalar subqueries inside the fragment would re-execute per morsel
  (``AQ403``).

SUM value kinds come from the lenient type inference in
:mod:`repro.analysis.typecheck`, which mirrors ``evaluate()`` exactly —
this replaces the zero-row probe the morsel executor used to run, and
is the single source of truth for the engine's merge decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.typecheck import InferenceError, Kind, TypeChecker
from repro.sqlir.expr import AggFunc, Expr, ScalarSubquery
from repro.sqlir.plan import (
    Aggregate,
    Filter,
    Plan,
    Project,
    Scan,
    node_exprs,
    subquery_plans,
)

__all__ = [
    "MERGEABLE_FUNCS",
    "MergeVerdict",
    "aggregate_merge_verdict",
    "streamable_chain",
    "fragment_verdicts",
]

# The only aggregate functions whose partials re-reduce exactly.
MERGEABLE_FUNCS = (AggFunc.COUNT, AggFunc.SUM, AggFunc.MIN, AggFunc.MAX)


@dataclass(frozen=True)
class MergeVerdict:
    """Whether one aggregate fragment may merge per-morsel partials."""

    mergeable: bool
    code: str = ""       # AQ401/AQ402/AQ403/AQ404 when not mergeable
    reason: str = ""
    node_id: int | None = None
    node: str = ""

    def describe(self) -> str:
        locus = f"node {self.node_id} {self.node}: " if self.node else ""
        if self.mergeable:
            return f"{locus}mergeable (int-exact partials)"
        return f"{locus}monolithic [{self.code}]: {self.reason}"

    def to_json(self) -> dict:
        return {
            "mergeable": self.mergeable,
            "code": self.code,
            "reason": self.reason,
            "node_id": self.node_id,
            "node": self.node,
        }


def _has_subquery(expr: Expr) -> bool:
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ScalarSubquery):
            return True
        stack.extend(node.children())
    return False


def aggregate_merge_verdict(
    plan: Aggregate, scan: Scan, steps: Any, catalog: Any
) -> MergeVerdict:
    """Merge-safety verdict for an Aggregate over a scan-rooted chain.

    ``steps`` are the Filter/Project nodes between the scan and the
    aggregate, bottom-up (the same shape
    :func:`repro.engine.morsel.extract_fragment` produces).
    """

    def refuse(code: str, reason: str) -> MergeVerdict:
        return MergeVerdict(
            mergeable=False,
            code=code,
            reason=reason,
            node_id=plan.node_id,
            node=repr(plan),
        )

    for spec in plan.aggregates:
        if spec.func not in MERGEABLE_FUNCS:
            return refuse(
                "AQ401",
                f"{spec.name}={spec.func.value}() partials do not "
                "re-reduce",
            )
        if spec.expr is not None and _has_subquery(spec.expr):
            return refuse(
                "AQ403",
                f"{spec.name} embeds a scalar subquery; per-morsel "
                "re-execution is not streamable",
            )
    sums = [s for s in plan.aggregates if s.func is AggFunc.SUM]
    if not sums:
        return MergeVerdict(
            mergeable=True, node_id=plan.node_id, node=repr(plan)
        )

    checker = TypeChecker(catalog, collect=False)
    try:
        schema = checker.schema_of(scan)
        if schema is None:
            raise InferenceError("AQ110", f"unknown table {scan.table!r}")
        for step in steps:
            if isinstance(step, Filter):
                checker.infer(step.predicate, schema, step)
            else:  # Project
                schema = {
                    name: checker.infer(expr, schema, step)
                    for name, expr in step.outputs
                }
        for spec in sums:
            meta = checker.infer(spec.expr, schema, plan)
            if meta.kind is Kind.FLOAT:
                return refuse(
                    "AQ402",
                    f"SUM({spec.name}) is float-valued; morsel merge "
                    "would change rounding order",
                )
    except InferenceError as err:
        return refuse(
            "AQ404",
            f"chain fails static inference ({err.code}: {err.message})",
        )
    return MergeVerdict(
        mergeable=True, node_id=plan.node_id, node=repr(plan)
    )


def streamable_chain(node: Plan) -> tuple[Scan, tuple[Plan, ...]] | None:
    """The (scan, steps) chain under ``node`` if it is pure streaming:
    Filter/Project steps without subqueries down to a base-table scan."""
    steps: list[Plan] = []
    while isinstance(node, (Filter, Project)):
        exprs = (
            [node.predicate]
            if isinstance(node, Filter)
            else [e for _, e in node.outputs]
        )
        if any(_has_subquery(e) for e in exprs):
            return None
        steps.append(node)
        node = node.child
    if not isinstance(node, Scan):
        return None
    steps.reverse()
    return node, tuple(steps)


def fragment_verdicts(plan: Plan,
                      catalog: Any) -> list[MergeVerdict]:
    """Merge verdicts for every aggregate fragment anywhere in the plan
    (including inside scalar subqueries)."""
    verdicts: list[MergeVerdict] = []
    seen: set[int] = set()

    def visit(root: Plan) -> None:
        for node in root.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, Aggregate):
                chain = streamable_chain(node.child)
                if chain is not None:
                    scan, steps = chain
                    verdicts.append(
                        aggregate_merge_verdict(node, scan, steps, catalog)
                    )
            for expr in node_exprs(node):
                for sub in subquery_plans(expr):
                    visit(sub)

    visit(plan)
    return verdicts
