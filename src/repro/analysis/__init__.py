"""Static plan analysis: verify before execute.

Four passes over a :class:`repro.sqlir.Plan` + catalog, none of which
executes a single row:

``types``
    Schema/dtype inference over every operator and expression
    (:mod:`repro.analysis.typecheck`, ``AQ1xx``).
``suspend``
    Predict each real device suspension as NEVER / ALWAYS /
    DEPENDS[lo, hi] from offload decisions, catalog statistics and the
    DRAM/bucket budgets (:mod:`repro.analysis.suspend`, ``AQ2xx``).
    Needs a :class:`repro.core.device.DeviceConfig`.
``pe``
    Abstractly execute the Row Transformer PE programs each Project
    would lower to (:mod:`repro.analysis.peverify`, ``AQ3xx``).
``morsel``
    Prove which aggregate fragments merge bit-identically under morsel
    parallelism (:mod:`repro.analysis.morselsafety`, ``AQ4xx``) — the
    engine's single source of truth for its merge decision.

Layering: this package imports ``sqlir``, ``storage`` and ``core``
compile-time modules only — never ``repro.engine`` or the simulator.
The engine and simulator import *us* (``engine.morsel`` for merge
verdicts, ``core.simulator`` for :func:`subtree_reduces`), so any
import in the other direction would cycle.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    PlanAnalysisWarning,
    PlanRejected,
    Severity,
    diag,
)
from repro.analysis.morselsafety import (
    MergeVerdict,
    aggregate_merge_verdict,
    fragment_verdicts,
    streamable_chain,
)
from repro.analysis.peverify import (
    RawInstr,
    verify_instructions,
    verify_program,
    verify_transform_graph,
)
from repro.analysis.suspend import (
    SuspendPrediction,
    SuspendPredictor,
    Verdict,
    subtree_reduces,
)
from repro.analysis.typecheck import (
    ColumnMeta,
    InferenceError,
    TypeChecker,
    scan_schema,
)
from repro.obs import METRICS, get_tracer
from repro.sqlir.expr import ColumnRef, Kind
from repro.sqlir.plan import (
    Plan,
    Project,
    assign_node_ids,
    node_exprs,
    subquery_plans,
)

__all__ = [
    "AnalysisReport",
    "ColumnMeta",
    "Diagnostic",
    "InferenceError",
    "MergeVerdict",
    "PlanAnalysisWarning",
    "PlanRejected",
    "RawInstr",
    "Severity",
    "SuspendPrediction",
    "SuspendPredictor",
    "TypeChecker",
    "Verdict",
    "aggregate_merge_verdict",
    "analyze_plan",
    "diag",
    "fragment_verdicts",
    "node_schemas",
    "scan_schema",
    "streamable_chain",
    "subtree_reduces",
    "verify_instructions",
    "verify_program",
    "verify_transform_graph",
]

ENGINE_PASSES = ("types", "morsel")
ALL_PASSES = ("types", "suspend", "pe", "morsel")


def node_schemas(plan: Plan, catalog: Any) -> dict[int, dict]:
    """Per-node static predictions keyed by ``node_id``.

    Runs :func:`assign_node_ids` (idempotent — ids are stable tree
    positions) and the type checker, and returns, for every node, the
    operator name, its repr and the inferred output schema — the
    "estimate" half of the doctor's explain-analyze table.  Scalar
    subquery plans are excluded: they never get engine spans of their
    own.
    """
    assign_node_ids(plan)
    checker = TypeChecker(catalog, collect=False)
    out: dict[int, dict] = {}
    for node in plan.walk():
        if node.node_id is None:  # pragma: no cover - ids just assigned
            continue
        schema = checker.schema_of(node)
        out[node.node_id] = {
            "op": type(node).__name__.lower(),
            "node": repr(node),
            "columns": (
                None
                if schema is None
                else {n: m.describe() for n, m in schema.items()}
            ),
            "n_columns": None if schema is None else len(schema),
        }
    return out


def analyze_plan(
    plan: Plan,
    catalog: Any,
    device: Any = None,
    passes: tuple[str, ...] | None = None,
) -> AnalysisReport:
    """Run the selected static passes and aggregate one report.

    ``device`` (a :class:`repro.core.device.DeviceConfig`) enables the
    device-facing passes; without it the default is the cheap,
    host-relevant pair ``("types", "morsel")`` the engine runs inline.
    """
    if passes is None:
        passes = ALL_PASSES if device is not None else ENGINE_PASSES
    unknown = [p for p in passes if p not in ALL_PASSES]
    if unknown:
        raise ValueError(
            f"unknown analysis pass(es) {unknown}; choose from {ALL_PASSES}"
        )

    tracer = get_tracer()
    report = AnalysisReport(passes=tuple(passes))
    with tracer.span("analysis.plan", passes=",".join(passes)):
        report.n_nodes = assign_node_ids(plan)

        if "types" in passes:
            with tracer.span("analysis.types"):
                checker = TypeChecker(catalog)
                checker.check(plan)
                report.diagnostics.extend(checker.diagnostics)

        if "suspend" in passes:
            if device is None:
                raise ValueError(
                    "the 'suspend' pass needs a DeviceConfig (device=...)"
                )
            with tracer.span("analysis.suspend"):
                predictor = SuspendPredictor(catalog, device)
                predictions, diagnostics = predictor.predict(plan)
                report.suspend.update(predictions)
                report.diagnostics.extend(diagnostics)

        if "pe" in passes:
            with tracer.span("analysis.pe"):
                report.diagnostics.extend(_pe_pass(plan, catalog, device))

        if "morsel" in passes:
            with tracer.span("analysis.morsel"):
                report.fragments = fragment_verdicts(plan, catalog)

    METRICS.counter(
        "analysis.plans_analyzed", "analyze_plan invocations"
    ).inc()
    return report


def _pe_pass(plan: Plan, catalog: Any,
             device: Any) -> list[Diagnostic]:
    """Lower every Project's computed outputs the way the Row
    Transformer would and verify the resulting PE programs."""
    from repro.core.dataflow import (
        UnsupportedTransform,
        build_transform_graph,
    )

    imem = device.pe_imem_size if device is not None else None
    checker = TypeChecker(catalog, collect=False)
    out: list[Diagnostic] = []
    for node in _walk_with_subqueries(plan):
        if not isinstance(node, Project):
            continue
        pe_outputs = [
            (name, expr)
            for name, expr in node.outputs
            if not isinstance(expr, ColumnRef)
        ]
        if not pe_outputs:
            continue
        schema = checker.schema_of(node.child)
        if schema is None:
            continue  # the types pass already reported the cause
        scales = {
            name: (meta.scale if meta.kind is Kind.INT else 0)
            for name, meta in schema.items()
        }
        try:
            graph = build_transform_graph(
                pe_outputs, input_scales=scales, imem_size=imem
            )
        except UnsupportedTransform as reason:
            out.append(
                diag(
                    "AQ308",
                    Severity.INFO,
                    f"no PE lowering ({reason}); the device falls back "
                    "to host-style evaluation",
                    node,
                )
            )
            continue
        except ValueError as err:
            out.append(diag("AQ303", Severity.ERROR, str(err), node))
            continue
        out.extend(verify_transform_graph(graph, node))
    return out


def _walk_with_subqueries(plan: Plan) -> Iterator[Plan]:
    """Preorder walk that also descends into scalar-subquery plans."""
    seen: set[int] = set()
    stack = [plan]
    while stack:
        root = stack.pop()
        for node in root.walk():
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            for expr in node_exprs(node):
                stack.extend(subquery_plans(expr))
