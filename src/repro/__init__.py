"""repro — a from-scratch Python reproduction of AQUOMAN (MICRO 2020).

AQUOMAN is an in-SSD analytic-query offloading machine: a fixed streaming
pipeline of three programmable accelerators (Row Selector, Row Transformer,
SQL Swissknife) that executes *Table Tasks* — static dataflow graphs of SQL
operators — directly against NAND flash, returning only reduced results to
the host.

The package is organised bottom-up:

- :mod:`repro.util`      — bit-vectors, units, deterministic RNG streams.
- :mod:`repro.storage`   — MonetDB-style columnar storage (BATs, string
  heaps, implicit RowIDs, materialised foreign-key join indices).
- :mod:`repro.flash`     — NAND flash array + controller-switch simulator.
- :mod:`repro.sqlir`     — logical query-plan IR and expression AST.
- :mod:`repro.engine`    — the software baseline: a column-at-a-time
  vectorised executor standing in for MonetDB, plus a host cost model.
- :mod:`repro.tpch`      — TPC-H dbgen and all 22 queries as plan builders.
- :mod:`repro.core`      — AQUOMAN itself: Table Tasks, the three
  accelerators, the streaming sorter, DRAM management, the query compiler
  and the device pipeline.
- :mod:`repro.perf`      — trace records, SF scaling and the timing /
  memory models behind every figure and table of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
