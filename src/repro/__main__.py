"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``query``    — run a TPC-H query (by number) or a SQL string, on the
  baseline engine and/or the AQUOMAN simulator;
- ``evaluate`` — the full Fig. 16 evaluation (all 22 queries, five
  system configurations, SF-1000 scaling);
- ``explain``  — per-node offload decisions for one query;
- ``analyze``  — static analysis: typecheck, suspend prediction,
  PE-program verification and morsel-safety proofs, without executing.
"""

from __future__ import annotations

import argparse
import sys

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.core.compiler import QueryCompiler
from repro.engine import Engine
from repro.sqlir import plan_sql
from repro.util.units import GB, fmt_bytes


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sf", type=float, default=0.01,
        help="functional TPC-H scale factor (default 0.01)",
    )
    parser.add_argument(
        "--target-sf", type=float, default=1000.0,
        help="simulated scale factor for device decisions (default 1000)",
    )


def _plan_of(args, db):
    if args.sql is not None:
        return plan_sql(args.sql, db)
    if args.number is None:
        raise SystemExit("give a TPC-H query number or --sql")
    return tpch.query(args.number)


def cmd_query(args) -> int:
    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    name = args.sql or f"q{args.number:02d}"

    table = Engine(db).execute(plan)
    print(table.head(args.rows))
    print(f"({table.nrows} rows)")

    if not args.no_device:
        config = DeviceConfig(
            dram_bytes=int(args.dram_gb * GB),
            scale_ratio=args.target_sf / args.sf,
        )
        result = AquomanSimulator(db, config).run(_plan_of(args, db),
                                                  query=name)
        trace = result.trace
        match = table.equals(result.table.renamed("result"))
        print(
            f"AQUOMAN: match={match} "
            f"rows-on-device={trace.offload_fraction_rows:.0%} "
            f"flash={fmt_bytes(trace.aquoman_flash_bytes)} "
            f"suspended={trace.suspend_reason or 'no'}"
        )
    return 0


def cmd_evaluate(args) -> int:
    from repro.perf.tpch_eval import collect_traces

    db = tpch.generate(args.sf)
    evaluation = collect_traces(db, target_sf=args.target_sf)
    report = evaluation.report(args.target_sf)

    print(f"{'query':>6} " + " ".join(f"{s:>10}" for s in report.systems))
    for q in report.queries:
        cells = " ".join(
            f"{report.timing(q, s).runtime_s:10.0f}" for s in report.systems
        )
        print(f"{q:>6} {cells}")
    totals = " ".join(
        f"{report.total_runtime(s):10.0f}" for s in report.systems
    )
    print(f"{'total':>6} {totals}")
    print(f"mean CPU saving : {report.mean_cpu_saving():.0%}")
    print(f"mean DRAM saving: {report.mean_dram_saving():.0%}")
    return 0


def cmd_generate(args) -> int:
    from repro.storage.io import save_catalog

    db = tpch.generate(args.sf)
    manifest = save_catalog(db, args.directory)
    print(f"wrote {fmt_bytes(db.nbytes)} of column files")
    print(f"manifest: {manifest}")
    return 0


def cmd_explain(args) -> int:
    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    compiler = QueryCompiler(db, scale_ratio=args.target_sf / args.sf)
    compiled = compiler.compile(plan)
    for node in plan.walk():
        decision = compiled.decision(node)
        marker = "DEVICE" if decision.offloadable else "host  "
        note = f"  <- {decision.reason.value}" if not decision.offloadable \
            else ""
        print(f"[{marker}] {node!r}{note}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_plan

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    config = DeviceConfig(
        dram_bytes=int(args.dram_gb * GB),
        scale_ratio=args.target_sf / args.sf,
    )
    report = analyze_plan(plan, db, device=config)
    if args.json:
        print(report.to_json_str())
    else:
        print(report.format())
    if args.strict and not report.ok:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AQUOMAN reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run one query both ways")
    p_query.add_argument("number", type=int, nargs="?",
                         help="TPC-H query number (1-22)")
    p_query.add_argument("--sql", help="a SQL string instead")
    p_query.add_argument("--rows", type=int, default=10)
    p_query.add_argument("--dram-gb", type=float, default=40.0)
    p_query.add_argument("--no-device", action="store_true")
    _add_common(p_query)
    p_query.set_defaults(func=cmd_query)

    p_eval = sub.add_parser("evaluate", help="the Fig. 16 evaluation")
    _add_common(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_generate = sub.add_parser(
        "generate", help="write a TPC-H catalog as column files"
    )
    p_generate.add_argument("directory")
    _add_common(p_generate)
    p_generate.set_defaults(func=cmd_generate)

    p_explain = sub.add_parser("explain", help="offload decisions")
    p_explain.add_argument("number", type=int, nargs="?")
    p_explain.add_argument("--sql")
    _add_common(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_analyze = sub.add_parser(
        "analyze", help="static analysis without executing"
    )
    p_analyze.add_argument("number", type=int, nargs="?",
                           help="TPC-H query number (1-22)")
    p_analyze.add_argument("--sql", help="a SQL string instead")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable report")
    p_analyze.add_argument("--dram-gb", type=float, default=40.0)
    p_analyze.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the analyzer finds errors",
    )
    _add_common(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
