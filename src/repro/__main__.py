"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``query``    — run a TPC-H query (by number) or a SQL string, on the
  baseline engine and/or the AQUOMAN simulator;
- ``evaluate`` — the full Fig. 16 evaluation (all 22 queries, five
  system configurations, SF-1000 scaling);
- ``explain``  — per-node offload decisions for one query;
- ``analyze``  — static analysis: typecheck, suspend prediction,
  PE-program verification and morsel-safety proofs, without executing;
- ``profile``  — run one query under the runtime tracer and export a
  ``chrome://tracing`` span timeline, Prometheus metrics and a flame
  summary (``--trace-out`` / ``--metrics-out``).

``query`` and ``evaluate`` also accept ``--trace-out``/``--metrics-out``
to record without the profile-specific defaults.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.core.compiler import QueryCompiler
from repro.engine import Engine
from repro.obs import (
    METRICS,
    Tracer,
    flame_summary,
    prometheus_text,
    set_global_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sqlir import plan_sql
from repro.util.units import GB, fmt_bytes


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sf", type=float, default=0.01,
        help="functional TPC-H scale factor (default 0.01)",
    )
    parser.add_argument(
        "--target-sf", type=float, default=1000.0,
        help="simulated scale factor for device decisions (default 1000)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write a Chrome trace-event JSON (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write Prometheus text-exposition metrics",
    )


def _plan_of(args, db):
    if args.sql is not None:
        return plan_sql(args.sql, db)
    if args.number is None:
        raise SystemExit("give a TPC-H query number or --sql")
    return tpch.query(args.number)


def _query_name(args) -> str:
    return args.sql or f"q{args.number:02d}"


def _obs_tracer(args) -> Tracer | None:
    """A live tracer when any observability export was requested."""
    if getattr(args, "trace_out", None) or getattr(
        args, "metrics_out", None
    ):
        METRICS.reset()
        return Tracer()
    return None


def _export_obs(tracer: Tracer | None, args, **metadata) -> None:
    if tracer is None:
        return
    if args.trace_out:
        doc = write_chrome_trace(tracer, args.trace_out,
                                 metadata=metadata)
        problems = validate_chrome_trace(doc)
        if problems:  # pragma: no cover - exporter self-check
            raise SystemExit(
                f"invalid trace export: {'; '.join(problems)}"
            )
        print(f"chrome trace: {args.trace_out} "
              f"(load in chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(prometheus_text(METRICS))
        print(f"metrics: {args.metrics_out}")


def cmd_query(args) -> int:
    db = tpch.generate(args.sf)
    # Plan once; both executors take the same plan object.
    plan = _plan_of(args, db)
    name = _query_name(args)
    tracer = _obs_tracer(args)

    table = Engine(db, tracer=tracer).execute(plan)
    print(table.head(args.rows))
    print(f"({table.nrows} rows)")

    if not args.no_device:
        config = DeviceConfig(
            dram_bytes=int(args.dram_gb * GB),
            scale_ratio=args.target_sf / args.sf,
        )
        result = AquomanSimulator(db, config, tracer=tracer).run(
            plan, query=name
        )
        trace = result.trace
        match = table.equals(result.table.renamed("result"))
        print(
            f"AQUOMAN: match={match} "
            f"rows-on-device={trace.offload_fraction_rows:.0%} "
            f"flash={fmt_bytes(trace.aquoman_flash_bytes)} "
            f"suspended={trace.suspend_reason or 'no'}"
        )
    _export_obs(tracer, args, query=name)
    return 0


def cmd_evaluate(args) -> int:
    from repro.perf.tpch_eval import collect_traces

    db = tpch.generate(args.sf)
    tracer = _obs_tracer(args)
    evaluation = collect_traces(db, target_sf=args.target_sf,
                                tracer=tracer)
    report = evaluation.report(args.target_sf)

    print(f"{'query':>6} " + " ".join(f"{s:>10}" for s in report.systems))
    for q in report.queries:
        cells = " ".join(
            f"{report.timing(q, s).runtime_s:10.0f}" for s in report.systems
        )
        print(f"{q:>6} {cells}")
    totals = " ".join(
        f"{report.total_runtime(s):10.0f}" for s in report.systems
    )
    print(f"{'total':>6} {totals}")
    print(f"mean CPU saving : {report.mean_cpu_saving():.0%}")
    print(f"mean DRAM saving: {report.mean_dram_saving():.0%}")
    _export_obs(tracer, args, queries=len(report.queries))
    return 0


def cmd_profile(args) -> int:
    """Run one query under the tracer and export its span timeline."""
    from repro.engine.morsel import MorselConfig

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    name = _query_name(args)
    if not args.trace_out:
        stem = f"q{args.number:02d}" if args.number is not None else "sql"
        args.trace_out = f"{stem}.trace.json"

    METRICS.reset()
    tracer = Tracer()
    # The ambient tracer lets module-level spans (storage I/O, the
    # analysis passes) land in the same timeline.
    set_global_tracer(tracer)
    try:
        wall0 = time.monotonic_ns()
        with tracer.span("profile.query", query=name):
            engine = Engine(
                db,
                tracer=tracer,
                morsels=MorselConfig(
                    parallel=True,
                    morsel_rows=args.morsel_rows,
                    n_workers=args.workers,
                ),
            )
            table = engine.execute(plan)
            if not args.no_device:
                config = DeviceConfig(
                    dram_bytes=int(args.dram_gb * GB),
                    scale_ratio=args.target_sf / args.sf,
                )
                AquomanSimulator(db, config, tracer=tracer).run(
                    plan, query=name
                )
        wall_ns = time.monotonic_ns() - wall0
    finally:
        set_global_tracer(None)

    root_ns = tracer.total_ns("profile.query")
    coverage = root_ns / wall_ns if wall_ns else 0.0
    print(flame_summary(tracer, top=args.top))
    print(
        f"\n{name}: {table.nrows} rows, "
        f"wall {wall_ns / 1e6:.1f} ms, span coverage {coverage:.1%}"
    )
    _export_obs(tracer, args, query=name, coverage=round(coverage, 4),
                wall_ms=round(wall_ns / 1e6, 3))
    return 0


def cmd_generate(args) -> int:
    from repro.storage.io import save_catalog

    db = tpch.generate(args.sf)
    manifest = save_catalog(db, args.directory)
    print(f"wrote {fmt_bytes(db.nbytes)} of column files")
    print(f"manifest: {manifest}")
    return 0


def cmd_explain(args) -> int:
    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    compiler = QueryCompiler(db, scale_ratio=args.target_sf / args.sf)
    compiled = compiler.compile(plan)
    for node in plan.walk():
        decision = compiled.decision(node)
        marker = "DEVICE" if decision.offloadable else "host  "
        note = f"  <- {decision.reason.value}" if not decision.offloadable \
            else ""
        print(f"[{marker}] {node!r}{note}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_plan

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    config = DeviceConfig(
        dram_bytes=int(args.dram_gb * GB),
        scale_ratio=args.target_sf / args.sf,
    )
    report = analyze_plan(plan, db, device=config)
    if args.json:
        print(report.to_json_str())
    else:
        print(report.format())
    if args.strict and not report.ok:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AQUOMAN reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run one query both ways")
    p_query.add_argument("number", type=int, nargs="?",
                         help="TPC-H query number (1-22)")
    p_query.add_argument("--sql", help="a SQL string instead")
    p_query.add_argument("--rows", type=int, default=10)
    p_query.add_argument("--dram-gb", type=float, default=40.0)
    p_query.add_argument("--no-device", action="store_true")
    _add_common(p_query)
    _add_obs(p_query)
    p_query.set_defaults(func=cmd_query)

    p_eval = sub.add_parser("evaluate", help="the Fig. 16 evaluation")
    _add_common(p_eval)
    _add_obs(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_profile = sub.add_parser(
        "profile",
        help="trace one query's runtime and export the timeline",
    )
    p_profile.add_argument("number", type=int, nargs="?",
                           help="TPC-H query number (1-22)")
    p_profile.add_argument("--sql", help="a SQL string instead")
    p_profile.add_argument("--dram-gb", type=float, default=40.0)
    p_profile.add_argument("--no-device", action="store_true")
    p_profile.add_argument(
        "--workers", type=int, default=4,
        help="morsel worker threads = trace lanes (default 4)",
    )
    p_profile.add_argument(
        "--morsel-rows", type=int, default=8192,
        help="rows per morsel; small default so tiny SFs still "
        "fan out (default 8192)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15,
        help="flame-summary rows to print (default 15)",
    )
    _add_common(p_profile)
    _add_obs(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_generate = sub.add_parser(
        "generate", help="write a TPC-H catalog as column files"
    )
    p_generate.add_argument("directory")
    _add_common(p_generate)
    p_generate.set_defaults(func=cmd_generate)

    p_explain = sub.add_parser("explain", help="offload decisions")
    p_explain.add_argument("number", type=int, nargs="?")
    p_explain.add_argument("--sql")
    _add_common(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_analyze = sub.add_parser(
        "analyze", help="static analysis without executing"
    )
    p_analyze.add_argument("number", type=int, nargs="?",
                           help="TPC-H query number (1-22)")
    p_analyze.add_argument("--sql", help="a SQL string instead")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable report")
    p_analyze.add_argument("--dram-gb", type=float, default=40.0)
    p_analyze.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the analyzer finds errors",
    )
    _add_common(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
