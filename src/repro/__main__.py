"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``query``    — run a TPC-H query (by number) or a SQL string, on the
  baseline engine and/or the AQUOMAN simulator;
- ``evaluate`` — the full Fig. 16 evaluation (all 22 queries, five
  system configurations, SF-1000 scaling);
- ``explain``  — per-node offload decisions for one query;
- ``analyze``  — static analysis: typecheck, suspend prediction,
  PE-program verification and morsel-safety proofs, without executing;
- ``lint``     — concurrency & determinism lint over the runtime's own
  source (AQ5xx): worker-context races, fork/pickle-boundary safety,
  determinism of merge paths, ambient-state discipline; ``--strict``
  exits 1 on findings, ``--selfcheck`` verifies the passes still catch
  seeded violations, ``--baseline`` regenerates the suppression
  baseline;
- ``profile``  — run one query under the runtime tracer and export a
  ``chrome://tracing`` span timeline, Prometheus metrics and a flame
  summary (``--trace-out`` / ``--metrics-out``);
- ``doctor``   — the query doctor: critical-path attribution across
  host/worker/device lanes, modeled bottleneck verdict with what-if
  projections, and the explain-analyze table joining the static
  analyzer's predictions with observed actuals;
- ``perf diff`` — compare run-record stores (JSONL) with median-of-N,
  noise-aware thresholds; ``--strict`` exits 1 on regressions, for CI;
- ``chaos``    — seeded fault-injection campaigns: run queries under
  injected flash/worker/device faults and verify every recovery path
  returns bit-identical results, emitting a JSON report; exits 1 on
  any mismatch or unrecoverable fault, for the CI chaos gate;
- ``tracediff`` — align two query-log runs by plan fingerprint and
  attribute the wall-time delta per critical-path bucket and span
  prefix; ``--strict`` exits 1 on regressions beyond the noise bands;
- ``serve``    — stdlib HTTP endpoint exposing every route in
  :data:`repro.obs.server.ROUTES` (Prometheus scrape, health,
  windowed time-series JSON, SLO burn-rate status, a self-contained
  HTML dashboard, traces and the query log); a background sampler and
  SLO engine run by default (``--sample-interval 0`` / ``--no-slo``
  disable them);
- ``top``      — curses-free ANSI terminal view of the same fleet
  signals (QPS, rolling p50/p99 per backend, fault rate, SLO status,
  slowest recent queries), polling a served URL or ``--demo``
  in-process data.

``query`` and ``evaluate`` also accept ``--trace-out``/``--metrics-out``
to record without the profile-specific defaults, and — like ``chaos``
— ``--query-log FILE`` to append one wide event per query (add
``--qlog-sample-k``/``--qlog-trace-dir`` for tail-sampled full traces).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.core.compiler import QueryCompiler
from repro.engine import Engine
from repro.engine.morsel import TUNED_MORSEL_ROWS, WORKER_BACKENDS
from repro.obs import (
    METRICS,
    QueryLog,
    Tracer,
    flame_summary,
    prometheus_text,
    set_global_tracer,
    set_query_log,
    validate_chrome_trace,
    warn_dropped_spans,
    write_chrome_trace,
)
from repro.perf.trace import QueryTrace
from repro.sqlir import plan_sql
from repro.util.units import GB, fmt_bytes


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sf", type=float, default=0.01,
        help="functional TPC-H scale factor (default 0.01)",
    )
    parser.add_argument(
        "--target-sf", type=float, default=1000.0,
        help="simulated scale factor for device decisions (default 1000)",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="FILE",
        help="write a Chrome trace-event JSON (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="write Prometheus text-exposition metrics",
    )
    _add_query_log(parser)


def _add_query_log(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--query-log", metavar="FILE",
        help="append one wide event per query (JSONL): fingerprint, "
        "wall time, critical-path buckets, counters, faults",
    )
    parser.add_argument(
        "--qlog-sample-k", type=int, default=0, metavar="K",
        help="tail sampling: retain full Chrome traces for the "
        "slowest K queries (plus all faulted / suspend-mispredicted "
        "ones); 0 disables trace retention (default)",
    )
    parser.add_argument(
        "--qlog-trace-dir", metavar="DIR",
        help="directory for tail-sampled traces (with --qlog-sample-k)",
    )


def _plan_of(args, db):
    if args.sql is not None:
        return plan_sql(args.sql, db)
    if args.number is None:
        raise SystemExit("give a TPC-H query number or --sql")
    return tpch.query(args.number)


def _query_name(args) -> str:
    return args.sql or f"q{args.number:02d}"


def _obs_tracer(args) -> Tracer | None:
    """A live tracer when any observability export was requested."""
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "query_log", None)
    ):
        METRICS.reset()
        return Tracer()
    return None


def _install_query_log(args) -> QueryLog | None:
    """Create + install the ambient query log when requested."""
    path = getattr(args, "query_log", None)
    if not path:
        return None
    log = QueryLog(
        path,
        sample_slowest_k=getattr(args, "qlog_sample_k", 0),
        trace_dir=getattr(args, "qlog_trace_dir", None),
    )
    set_query_log(log)
    return log


def _report_query_log(log: QueryLog | None) -> None:
    """Uninstall the ambient log and print a one-line summary."""
    if log is None:
        return
    set_query_log(None)
    log.close()
    print(f"query log: {log.path} ({log.n_emitted} wide events)",
          file=sys.stderr)


def _export_obs(tracer: Tracer | None, args, **metadata) -> None:
    if tracer is None:
        return
    if args.trace_out:
        doc = write_chrome_trace(tracer, args.trace_out,
                                 metadata=metadata)
        problems = validate_chrome_trace(doc)
        if problems:  # pragma: no cover - exporter self-check
            raise SystemExit(
                f"invalid trace export: {'; '.join(problems)}"
            )
        print(f"chrome trace: {args.trace_out} "
              f"(load in chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(prometheus_text(METRICS))
        print(f"metrics: {args.metrics_out}")


def cmd_query(args) -> int:
    db = tpch.generate(args.sf)
    # Plan once; both executors take the same plan object.
    plan = _plan_of(args, db)
    name = _query_name(args)
    tracer = _obs_tracer(args)
    qlog = _install_query_log(args)

    try:
        engine_trace = QueryTrace(query=name)
        table = Engine(db, engine_trace, tracer=tracer).execute(plan)
        print(table.head(args.rows))
        print(f"({table.nrows} rows)")

        if not args.no_device:
            config = DeviceConfig(
                dram_bytes=int(args.dram_gb * GB),
                scale_ratio=args.target_sf / args.sf,
            )
            result = AquomanSimulator(db, config, tracer=tracer).run(
                plan, query=name
            )
            trace = result.trace
            match = table.equals(result.table.renamed("result"))
            print(
                f"AQUOMAN: match={match} "
                f"rows-on-device={trace.offload_fraction_rows:.0%} "
                f"flash={fmt_bytes(trace.aquoman_flash_bytes)} "
                f"suspended={trace.suspend_reason or 'no'}"
            )
    finally:
        _report_query_log(qlog)
    _export_obs(tracer, args, query=name)
    return 0


def cmd_evaluate(args) -> int:
    from repro.perf.tpch_eval import collect_traces

    db = tpch.generate(args.sf)
    tracer = _obs_tracer(args)
    qlog = _install_query_log(args)
    try:
        evaluation = collect_traces(db, target_sf=args.target_sf,
                                    tracer=tracer)
    finally:
        _report_query_log(qlog)
    report = evaluation.report(args.target_sf)

    print(f"{'query':>6} " + " ".join(f"{s:>10}" for s in report.systems))
    for q in report.queries:
        cells = " ".join(
            f"{report.timing(q, s).runtime_s:10.0f}" for s in report.systems
        )
        print(f"{q:>6} {cells}")
    totals = " ".join(
        f"{report.total_runtime(s):10.0f}" for s in report.systems
    )
    print(f"{'total':>6} {totals}")
    print(f"mean CPU saving : {report.mean_cpu_saving():.0%}")
    print(f"mean DRAM saving: {report.mean_dram_saving():.0%}")
    _export_obs(tracer, args, queries=len(report.queries))
    return 0


def cmd_profile(args) -> int:
    """Run one query under the tracer and export its span timeline."""
    from repro.engine.morsel import MorselConfig

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    name = _query_name(args)
    if not args.trace_out:
        stem = f"q{args.number:02d}" if args.number is not None else "sql"
        args.trace_out = f"{stem}.trace.json"

    METRICS.reset()
    tracer = (
        Tracer(ring_capacity=args.ring_capacity)
        if args.ring_capacity is not None
        else Tracer()
    )
    # The ambient tracer lets module-level spans (storage I/O, the
    # analysis passes) land in the same timeline.
    set_global_tracer(tracer)
    try:
        wall0 = time.monotonic_ns()
        with tracer.span("profile.query", query=name):
            engine = Engine(
                db,
                tracer=tracer,
                morsels=MorselConfig(
                    parallel=True,
                    morsel_rows=args.morsel_rows,
                    n_workers=args.workers,
                    worker_backend=args.backend,
                ),
            )
            table = engine.execute(plan)
            if not args.no_device:
                config = DeviceConfig(
                    dram_bytes=int(args.dram_gb * GB),
                    scale_ratio=args.target_sf / args.sf,
                )
                AquomanSimulator(db, config, tracer=tracer).run(
                    plan, query=name
                )
        wall_ns = time.monotonic_ns() - wall0
    finally:
        set_global_tracer(None)

    root_ns = tracer.total_ns("profile.query")
    coverage = root_ns / wall_ns if wall_ns else 0.0
    print(flame_summary(tracer, top=args.top))
    dropped = tracer.n_dropped
    suffix = " (coverage undercounts: spans were dropped)" if dropped \
        else ""
    print(
        f"\n{name}: {table.nrows} rows, "
        f"wall {wall_ns / 1e6:.1f} ms, span coverage {coverage:.1%}"
        f"{suffix}"
    )
    if dropped:
        print(f"WARNING: {dropped} spans dropped (raise ring_capacity)")
    _export_obs(tracer, args, query=name, coverage=round(coverage, 4),
                wall_ms=round(wall_ns / 1e6, 3))
    return 0


def cmd_generate(args) -> int:
    from repro.storage.io import save_catalog

    db = tpch.generate(args.sf)
    manifest = save_catalog(db, args.directory)
    print(f"wrote {fmt_bytes(db.nbytes)} of column files")
    print(f"manifest: {manifest}")
    return 0


def cmd_explain(args) -> int:
    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    compiler = QueryCompiler(db, scale_ratio=args.target_sf / args.sf)
    compiled = compiler.compile(plan)
    for node in plan.walk():
        decision = compiled.decision(node)
        marker = "DEVICE" if decision.offloadable else "host  "
        note = f"  <- {decision.reason.value}" if not decision.offloadable \
            else ""
        print(f"[{marker}] {node!r}{note}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import analyze_plan

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    config = DeviceConfig(
        dram_bytes=int(args.dram_gb * GB),
        scale_ratio=args.target_sf / args.sf,
    )
    report = analyze_plan(plan, db, device=config)
    if args.json:
        print(report.to_json_str())
    else:
        print(report.format())
    if args.strict and not report.ok:
        return 1
    return 0


def cmd_lint(args) -> int:
    """Concurrency & determinism lint over the repro sources."""
    from repro.analysis.conccheck import lint_repo
    from repro.analysis.conccheck.config import default_baseline_path

    if args.selfcheck:
        from repro.analysis.conccheck.selfcheck import run_selfcheck

        ok, lines = run_selfcheck()
        print("\n".join(lines))
        return 0 if ok else 1

    report = lint_repo(use_baseline=not args.baseline)
    if args.baseline:
        from repro.analysis.conccheck.report import write_baseline

        entries = write_baseline(default_baseline_path(), report)
        print(f"baseline: {default_baseline_path()} "
              f"({len(entries)} fingerprints)")
        return 0
    if args.json:
        print(report.to_json_str())
    else:
        print(report.format(verbose=args.verbose))
    if args.strict and not report.ok:
        return 1
    return 0


def cmd_doctor(args) -> int:
    """Diagnose one query: critical path, bottleneck, explain-analyze."""
    from repro.obs.doctor import diagnose, report_json

    db = tpch.generate(args.sf)
    plan = _plan_of(args, db)
    name = _query_name(args)
    report = diagnose(
        db,
        plan,
        name,
        target_sf=args.target_sf,
        dram_gb=args.dram_gb,
        workers=args.workers,
        morsel_rows=args.morsel_rows,
        backend=args.backend,
        ring_capacity=args.ring_capacity,
    )
    print(report_json(report) if args.json else report.format())
    warn_dropped_spans(
        getattr(report, "n_dropped_spans", 0), "doctor"
    )
    if args.strict and report.mispredictions:
        return 1
    return 0


def cmd_perf_diff(args) -> int:
    """Compare two run-record stores; exit 1 on regressions."""
    from repro.obs.baseline import compare, load_records

    thresholds = {}
    for spec in args.threshold or ():
        metric, sep, value = spec.rpartition("=")
        if not sep:
            raise SystemExit(f"--threshold wants METRIC=REL, got {spec!r}")
        thresholds[metric] = float(value)
    report = compare(
        load_records(args.baseline),
        load_records(args.current),
        thresholds=thresholds or None,
    )
    print(report.format(verbose=args.verbose))
    return 1 if report.failed(strict=args.strict) else 0


def cmd_chaos(args) -> int:
    """Run a seeded chaos campaign and emit its JSON report."""
    import json

    from repro.faults.chaos import run_campaign
    from repro.faults.plan import FaultConfig

    if args.queries.strip().lower() == "all":
        queries = list(range(1, 23))
    else:
        queries = [int(q) for q in args.queries.split(",") if q.strip()]
    seeds = [args.seed + k for k in range(args.campaign)]
    config = FaultConfig(
        page_error_rate=args.page_error_rate,
        latency_spike_rate=args.latency_spike_rate,
        worker_crash_rate=args.worker_crash_rate,
        device_fault_rate=args.device_fault_rate,
        channel_stall_rate=args.channel_stall_rate,
        retry_budget=args.retry_budget,
    )
    tracer = Tracer() if args.query_log else None
    qlog = _install_query_log(args)
    if tracer is not None:
        # Ambient too, so injector fault instants join the timeline
        # (and the wide events) alongside the engine's spans.
        set_global_tracer(tracer)
    try:
        report = run_campaign(
            queries,
            seeds,
            config,
            sf=args.sf,
            target_sf=args.target_sf,
            workers=args.workers,
            morsel_rows=args.morsel_rows,
            backend=args.backend,
            log=lambda line: print(f"  {line}", file=sys.stderr),
            tracer=tracer,
        )
    finally:
        if tracer is not None:
            set_global_tracer(None)
        _report_query_log(qlog)
    if tracer is not None:
        warn_dropped_spans(tracer.n_dropped, "chaos campaign")
    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"chaos report: {args.out}", file=sys.stderr)
    else:
        print(text)
    totals = report["totals"]
    print(
        f"chaos: {len(report['runs'])} runs, "
        f"{totals.get('injected', 0)} faults injected, "
        f"{totals.get('page_retries', 0)} retries, "
        f"{totals.get('morsel_retries', 0)} morsel re-runs, "
        f"{totals.get('host_fallbacks', 0)} host fallbacks "
        f"-> {report['verdict']}",
        file=sys.stderr,
    )
    return 0 if report["verdict"] == "pass" else 1


def cmd_tracediff(args) -> int:
    """Attribute the wall-time delta between two query-log runs."""
    import json

    from repro.obs.tracediff import diff_runs, load_wide_events

    diff = diff_runs(
        load_wide_events(args.run_a),
        load_wide_events(args.run_b),
        rel_band=args.rel_band,
        abs_band_ms=args.abs_band_ms,
    )
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.format(top=args.top))
    return 1 if args.strict and diff.regressions else 0


def cmd_serve(args) -> int:
    """Serve every obs route over stdlib HTTP, sampling by default."""
    import threading

    from repro.obs import chrome_trace
    from repro.obs.server import ObsServer, route_summary, set_last_trace
    from repro.obs.slo import (
        BurnWindows,
        SloEngine,
        default_objectives,
        set_slo_engine,
    )
    from repro.obs.timeseries import (
        Sampler,
        TimeSeriesStore,
        set_timeseries,
    )

    from repro.engine.morsel import MorselConfig

    db = tpch.generate(args.sf)
    warm = [int(q) for q in args.warm.split(",") if q.strip()] \
        if args.warm else []

    METRICS.reset()
    tracer = Tracer()
    set_global_tracer(tracer)
    # An in-memory query log (no JSONL) feeds the wide-event ring and
    # the query.* fleet instruments the rings and SLOs read.
    set_query_log(QueryLog(args.query_log))
    sampler = None
    stop_loop = threading.Event()
    loop_thread = None
    try:
        engine = Engine(
            db,
            tracer=tracer,
            morsels=MorselConfig(
                parallel=True, morsel_rows=TUNED_MORSEL_ROWS
            ),
        )

        def run_warm(number: int) -> None:
            plan = tpch.query(number)
            t0 = time.monotonic_ns()
            engine.trace.query = f"q{number:02d}"
            with tracer.span("serve.warm", query=f"q{number:02d}"):
                engine.execute_relation(plan)
            METRICS.counter(
                "serve.warm_queries", "queries run before serving"
            ).inc()
            METRICS.histogram(
                "serve.warm_ms", "warm query wall time (ms)"
            ).observe((time.monotonic_ns() - t0) / 1e6)

        for number in warm:
            run_warm(number)
        if warm:
            set_last_trace(chrome_trace(
                tracer, metadata={"warm_queries": warm, "sf": args.sf}
            ))

        if args.sample_interval > 0:
            store = TimeSeriesStore(METRICS)
            set_timeseries(store)
            engine_slo = None
            if not args.no_slo:
                engine_slo = SloEngine(
                    store,
                    default_objectives(p99_ms=args.slo_p99_ms),
                    BurnWindows(),
                )
                set_slo_engine(engine_slo)
            sampler = Sampler(
                store, interval_s=args.sample_interval,
                slo_engine=engine_slo,
            ).start()

        if args.loop and warm:
            # Replay the warm queries forever so the dashboard and SLO
            # windows have live traffic to show.
            def replay() -> None:
                while not stop_loop.is_set():
                    for number in warm:
                        if stop_loop.is_set():
                            return
                        run_warm(number)
                    stop_loop.wait(args.loop_interval)

            loop_thread = threading.Thread(
                target=replay, name="serve-loop", daemon=True
            )
            loop_thread.start()

        server = ObsServer(host=args.host, port=args.port)
        print(f"serving on {server.url}  "
              f"({route_summary()}; Ctrl-C stops)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    finally:
        stop_loop.set()
        if loop_thread is not None:
            loop_thread.join(timeout=5)
        if sampler is not None:
            sampler.stop()
        from repro.obs.slo import set_slo_engine as _set_slo
        from repro.obs.timeseries import set_timeseries as _set_ts

        _set_slo(None)
        _set_ts(None)
        set_query_log(None)
        set_global_tracer(None)
    return 0


def cmd_top(args) -> int:
    """Terminal fleet view over a served or in-process registry."""
    from repro.obs.top import (
        run_top,
        snapshot_from_http,
        snapshot_local,
    )

    iterations = 1 if args.once else args.iterations
    color = not args.no_color
    if not args.demo:
        return run_top(
            lambda: snapshot_from_http(args.url, args.window),
            interval_s=args.interval,
            iterations=iterations,
            color=color,
        )

    # Demo mode: run a handful of queries in-process and render from
    # the local store — no server needed.
    from repro.engine.morsel import MorselConfig
    from repro.obs.slo import BurnWindows, SloEngine, default_objectives
    from repro.obs.timeseries import TimeSeriesStore

    METRICS.reset()
    set_query_log(QueryLog(None))
    try:
        db = tpch.generate(args.sf)
        engine = Engine(
            db,
            morsels=MorselConfig(
                parallel=True, morsel_rows=TUNED_MORSEL_ROWS
            ),
        )
        store = TimeSeriesStore(METRICS)
        slo = SloEngine(store, default_objectives(),
                        BurnWindows(short_s=5.0, long_s=30.0))
        for _ in range(3):
            for number in (1, 6):
                engine.trace.query = f"q{number:02d}"
                engine.execute_relation(tpch.query(number))
            store.sample()
        return run_top(
            lambda: snapshot_local(store, slo, args.window),
            interval_s=args.interval,
            iterations=iterations if iterations else 1,
            color=color,
        )
    finally:
        set_query_log(None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="AQUOMAN reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_query = sub.add_parser("query", help="run one query both ways")
    p_query.add_argument("number", type=int, nargs="?",
                         help="TPC-H query number (1-22)")
    p_query.add_argument("--sql", help="a SQL string instead")
    p_query.add_argument("--rows", type=int, default=10)
    p_query.add_argument("--dram-gb", type=float, default=40.0)
    p_query.add_argument("--no-device", action="store_true")
    _add_common(p_query)
    _add_obs(p_query)
    p_query.set_defaults(func=cmd_query)

    p_eval = sub.add_parser("evaluate", help="the Fig. 16 evaluation")
    _add_common(p_eval)
    _add_obs(p_eval)
    p_eval.set_defaults(func=cmd_evaluate)

    p_profile = sub.add_parser(
        "profile",
        help="trace one query's runtime and export the timeline",
    )
    p_profile.add_argument("number", type=int, nargs="?",
                           help="TPC-H query number (1-22)")
    p_profile.add_argument("--sql", help="a SQL string instead")
    p_profile.add_argument("--dram-gb", type=float, default=40.0)
    p_profile.add_argument("--no-device", action="store_true")
    p_profile.add_argument(
        "--workers", type=int, default=4,
        help="morsel workers = trace lanes (default 4)",
    )
    p_profile.add_argument(
        "--backend", choices=WORKER_BACKENDS, default="thread",
        help="morsel worker backend; 'process' adds proc-worker-N "
        "lanes to the trace (default thread)",
    )
    p_profile.add_argument(
        "--morsel-rows", type=int, default=TUNED_MORSEL_ROWS,
        help="rows per morsel (default %(default)s, bench-tuned)",
    )
    p_profile.add_argument(
        "--top", type=int, default=15,
        help="flame-summary rows to print (default 15)",
    )
    p_profile.add_argument(
        "--ring-capacity", type=int, default=None,
        help="per-thread span ring size (default 65536); the run "
        "warns when spans were dropped",
    )
    _add_common(p_profile)
    _add_obs(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_generate = sub.add_parser(
        "generate", help="write a TPC-H catalog as column files"
    )
    p_generate.add_argument("directory")
    _add_common(p_generate)
    p_generate.set_defaults(func=cmd_generate)

    p_explain = sub.add_parser("explain", help="offload decisions")
    p_explain.add_argument("number", type=int, nargs="?")
    p_explain.add_argument("--sql")
    _add_common(p_explain)
    p_explain.set_defaults(func=cmd_explain)

    p_analyze = sub.add_parser(
        "analyze", help="static analysis without executing"
    )
    p_analyze.add_argument("number", type=int, nargs="?",
                           help="TPC-H query number (1-22)")
    p_analyze.add_argument("--sql", help="a SQL string instead")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable report")
    p_analyze.add_argument("--dram-gb", type=float, default=40.0)
    p_analyze.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the analyzer finds errors",
    )
    _add_common(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        help="AQ5xx concurrency & determinism lint of the sources",
    )
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the lint finds errors",
    )
    p_lint.add_argument(
        "--baseline", action="store_true",
        help="regenerate the committed suppression baseline from the "
        "current findings",
    )
    p_lint.add_argument(
        "--selfcheck", action="store_true",
        help="verify each pass still catches its seeded violations",
    )
    p_lint.add_argument(
        "--verbose", action="store_true",
        help="also list # conc: safe suppressions and baselined "
        "findings",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_doctor = sub.add_parser(
        "doctor",
        help="diagnose one query: critical path, bottleneck, "
        "explain-analyze",
    )
    p_doctor.add_argument("number", type=int, nargs="?",
                          help="TPC-H query number (1-22)")
    p_doctor.add_argument("--sql", help="a SQL string instead")
    p_doctor.add_argument("--dram-gb", type=float, default=40.0)
    p_doctor.add_argument(
        "--workers", type=int, default=4,
        help="morsel workers (default 4)",
    )
    p_doctor.add_argument(
        "--backend", choices=WORKER_BACKENDS, default="thread",
        help="morsel worker backend (default thread)",
    )
    p_doctor.add_argument(
        "--morsel-rows", type=int, default=TUNED_MORSEL_ROWS,
        help="rows per morsel (default %(default)s, bench-tuned)",
    )
    p_doctor.add_argument(
        "--ring-capacity", type=int, default=None,
        help="per-thread span ring size (default 65536)",
    )
    p_doctor.add_argument("--json", action="store_true",
                          help="machine-readable report")
    p_doctor.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any estimate-vs-actual row mispredicts",
    )
    _add_common(p_doctor)
    p_doctor.set_defaults(func=cmd_doctor)

    p_perf = sub.add_parser("perf", help="performance baselines")
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_diff = perf_sub.add_parser(
        "diff", help="compare run-record stores (JSONL)"
    )
    p_diff.add_argument("baseline", help="baseline run-record JSONL")
    p_diff.add_argument("current", help="current run-record JSONL")
    p_diff.add_argument(
        "--strict", action="store_true",
        help="also fail when a baseline metric went missing",
    )
    p_diff.add_argument(
        "--threshold", action="append", metavar="METRIC=REL",
        help="override a relative threshold, e.g. wall.=0.4 "
        "(prefix match, repeatable)",
    )
    p_diff.add_argument("--verbose", action="store_true",
                        help="print every metric, not just changes")
    p_diff.set_defaults(func=cmd_perf_diff)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with bit-identical "
        "recovery verification",
    )
    p_chaos.add_argument(
        "queries",
        help='TPC-H query numbers: "6", "1,6,14", or "all"',
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0,
        help="first campaign seed (default 0)",
    )
    p_chaos.add_argument(
        "--campaign", type=int, default=5,
        help="number of consecutive seeds to run (default 5)",
    )
    p_chaos.add_argument(
        "--page-error-rate", type=float, default=0.02,
        help="transient flash page read error rate (default 0.02)",
    )
    p_chaos.add_argument(
        "--latency-spike-rate", type=float, default=0.05,
        help="page-read latency spike rate (default 0.05)",
    )
    p_chaos.add_argument(
        "--worker-crash-rate", type=float, default=0.2,
        help="morsel-worker crash rate (default 0.2)",
    )
    p_chaos.add_argument(
        "--device-fault-rate", type=float, default=0.3,
        help="mid-task device fault rate per subtree (default 0.3)",
    )
    p_chaos.add_argument(
        "--channel-stall-rate", type=float, default=0.25,
        help="whole-channel stall rate (default 0.25)",
    )
    p_chaos.add_argument(
        "--retry-budget", type=int, default=3,
        help="retries after the first failure; 0 makes any transient "
        "fault terminal (default 3)",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=4,
        help="morsel worker threads (default 4)",
    )
    p_chaos.add_argument(
        "--morsel-rows", type=int, default=8192,
        help="rows per morsel; small default keeps fault-site "
        "density high (default 8192)",
    )
    p_chaos.add_argument(
        "--backend", choices=WORKER_BACKENDS, default="thread",
        help="morsel worker backend; reports are identical across "
        "backends (default thread)",
    )
    p_chaos.add_argument(
        "--out", metavar="FILE",
        help="write the JSON report here instead of stdout",
    )
    _add_common(p_chaos)
    _add_query_log(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_tracediff = sub.add_parser(
        "tracediff",
        help="attribute the wall-time delta between two query-log "
        "runs per critical-path bucket and span prefix",
    )
    p_tracediff.add_argument("run_a", help="baseline query-log JSONL")
    p_tracediff.add_argument("run_b", help="candidate query-log JSONL")
    p_tracediff.add_argument(
        "--top", type=int, default=10,
        help="entries to print, largest |delta| first (default 10)",
    )
    p_tracediff.add_argument(
        "--rel-band", type=float, default=0.10,
        help="relative noise band before a delta counts as a "
        "regression (default 0.10)",
    )
    p_tracediff.add_argument(
        "--abs-band-ms", type=float, default=0.5,
        help="absolute noise floor in ms (default 0.5)",
    )
    p_tracediff.add_argument("--json", action="store_true",
                             help="machine-readable report")
    p_tracediff.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any aligned query regresses beyond the bands",
    )
    p_tracediff.set_defaults(func=cmd_tracediff)

    from repro.obs.server import route_summary

    p_serve = sub.add_parser(
        "serve",
        help=f"HTTP {route_summary()}",
        description="Serve the observability endpoints: "
        + route_summary(),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9463)
    p_serve.add_argument(
        "--warm", default="1,6", metavar="Q,Q,...",
        help="TPC-H queries to run before serving, populating metrics "
        "and /trace/last (default 1,6; empty string skips)",
    )
    p_serve.add_argument(
        "--sf", type=float, default=0.01,
        help="functional TPC-H scale factor (default 0.01)",
    )
    p_serve.add_argument(
        "--sample-interval", type=float, default=1.0, metavar="S",
        help="time-series sampler cadence in seconds; 0 disables the "
        "sampler, /timeseries and /dashboard (default 1.0)",
    )
    p_serve.add_argument(
        "--slo-p99-ms", type=float, default=250.0, metavar="MS",
        help="latency-SLO threshold: fraction of queries above this "
        "drives the burn rate (default 250)",
    )
    p_serve.add_argument(
        "--no-slo", action="store_true",
        help="sample without evaluating SLO objectives",
    )
    p_serve.add_argument(
        "--loop", action="store_true",
        help="replay the --warm queries forever on a background "
        "thread, so the dashboard shows live traffic",
    )
    p_serve.add_argument(
        "--loop-interval", type=float, default=1.0, metavar="S",
        help="pause between --loop replay rounds (default 1.0)",
    )
    p_serve.add_argument(
        "--query-log", metavar="FILE", default=None,
        help="also append wide events to FILE (JSONL); without it the "
        "query log stays in-memory (ring + fleet metrics only)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_top = sub.add_parser(
        "top", help="live terminal fleet view (QPS, p50/p99, SLOs)"
    )
    p_top.add_argument(
        "--url", default="http://127.0.0.1:9463",
        help="base URL of a running `repro serve` (default "
        "http://127.0.0.1:9463)",
    )
    p_top.add_argument(
        "--window", type=float, default=60.0, metavar="S",
        help="rolling window in seconds (default 60)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="repaint interval in seconds (default 2.0)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (pipe-friendly)",
    )
    p_top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-color", action="store_true",
        help="plain text without ANSI styling",
    )
    p_top.add_argument(
        "--demo", action="store_true",
        help="no server: run a few queries in-process and show them",
    )
    p_top.add_argument(
        "--sf", type=float, default=0.001,
        help="--demo scale factor (default 0.001)",
    )
    p_top.set_defaults(func=cmd_top)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
