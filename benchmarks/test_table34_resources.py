"""Tables III/IV — component complexity inventory (substituted).

The paper reports FPGA LUT/FF/BRAM/DSP per module; without RTL we
report the structural quantities that determine them.  The checks
encode the tables' takeaways: the Row Transformer owns the DSP-heavy
multipliers (the paper's 256 DSP48s), the Swissknife carries the SRAM,
and the streaming sorter is bigger than the rest of AQUOMAN combined
(the reason prototype needed two FPGAs, Sec. VII).
"""


from conftest import print_table
from repro.core.resources import component_inventory, sorter_inventory


def test_resource_inventory(benchmark):
    core, sorter = benchmark(
        lambda: (component_inventory(), sorter_inventory())
    )

    rows = [
        [c.name, c.comparators, c.multipliers, c.sram_bytes,
         f"{c.weight:.0f}"]
        for c in core
    ]
    print_table(
        "Table III analogue: AQUOMAN (w/o sorter) complexity",
        ["module", "comparators", "multipliers", "SRAM B", "weight"],
        rows,
    )
    rows = [
        [c.name, c.comparators, c.sram_bytes, c.pipeline_stages,
         f"{c.weight:.0f}"]
        for c in sorter
    ]
    print_table(
        "Table IV analogue: Streaming Sorter complexity",
        ["module", "comparators", "SRAM B", "stages", "weight"],
        rows,
    )

    by_name = {c.name: c for c in core}
    # The transformer owns the multipliers (paper: all 256 DSP48s).
    assert by_name["Row Transformer"].multipliers == max(
        c.multipliers for c in core
    )
    # The Swissknife carries most of the core's SRAM after the page
    # buffer (paper: 140 of 448 RAMB36).
    assert by_name["SQL Swissknife (w/o sorter)"].sram_bytes > 64 * 1024

    # The sorter outweighs the rest combined — why the prototype needed
    # a second FPGA (Sec. VII).
    sorter_weight = sum(c.weight for c in sorter)
    core_weight = sum(c.weight for c in core)
    assert sorter_weight > 0.5 * core_weight
