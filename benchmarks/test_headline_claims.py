"""Sec. VIII headline claims, all three in one regenerable check.

1. One AQUOMAN disk frees ~70% of host CPU cycles (we assert >=60%).
2. Average host DRAM usage drops ~60% (we assert >=50%).
3. A 4-core/16 GB host with an AQUOMAN16 SSD matches a 32-core/128 GB
   host with plain SSDs when queries run sequentially (within 15%).
"""

import pytest

from conftest import print_table


def test_headline_claims(benchmark, evaluation):
    report = benchmark(lambda: evaluation.report(1000.0))

    cpu_saving = report.mean_cpu_saving()
    dram_saving = report.mean_dram_saving()
    ratio = report.total_runtime("S-AQUOMAN16") / report.total_runtime("L")

    print_table(
        "Headline claims (paper -> measured)",
        ["claim", "paper", "measured"],
        [
            ["CPU cycles freed", "70%", f"{100 * cpu_saving:.0f}%"],
            ["avg DRAM saved", "60%", f"{100 * dram_saving:.0f}%"],
            ["S-AQUOMAN16 / L total", "~1.0", f"{ratio:.2f}"],
            [
                "L / L-AQUOMAN total",
                "1.5-2x",
                f"{report.total_runtime('L') / report.total_runtime('L-AQUOMAN'):.2f}x",
            ],
        ],
    )

    assert cpu_saving >= 0.60
    assert dram_saving >= 0.50
    assert ratio == pytest.approx(1.0, abs=0.15)
