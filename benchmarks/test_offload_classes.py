"""Sec. VI-E / VIII-B — the query offload classification.

Regenerates the paper's taxonomy from compiler analysis + simulation:

- ~14 of 22 queries offload (nearly) fully at 40 GB device DRAM;
- a mid-plan Aggregate-GroupBy suspends q17/q18 (the paper adds
  q11/q22; our decorrelated plans shift q2/q15/q20 into this class
  instead — see EXPERIMENTS.md);
- regex over scaled string heaps keeps q9/q13/q16/q20 off the device;
- Q18's group-by wants ~1.5 B groups against 1024 buckets (the paper's
  extreme spill);
- dropping device DRAM from 40 GB to 16 GB affects only a couple of
  join-heavy queries (paper: 4, 5, 8, 21; ours: 5, 21).
"""


from conftest import print_table
from repro.core.compiler import SuspendReason
from repro.tpch.schema import table_cardinality


def test_offload_classification(benchmark, evaluation):
    def classify():
        classes = {}
        for q, sim in evaluation.simulations.items():
            reasons = sim.suspend_reasons
            classes[q] = {
                "offload": sim.trace.offload_fraction_rows,
                "groupby": SuspendReason.MID_PLAN_GROUPBY in reasons,
                "strings": SuspendReason.STRING_HEAP in reasons,
                "spill": sim.trace.groupby_spill_groups,
            }
        return classes

    classes = benchmark(classify)

    rows = [
        [
            q,
            f"{100 * c['offload']:.0f}%",
            "groupby" if c["groupby"] else "",
            "strings" if c["strings"] else "",
            c["spill"],
        ]
        for q, c in sorted(classes.items())
    ]
    print_table(
        "Offload classes (paper Sec. VIII-B)",
        ["query", "rows on device", "mid-plan", "string-heap", "spilled"],
        rows,
    )

    string_bound = {q for q, c in classes.items() if c["strings"]}
    assert {"q09", "q13", "q16", "q20"} <= string_bound

    groupby_bound = {q for q, c in classes.items() if c["groupby"]}
    assert {"q17", "q18"} <= groupby_bound

    fully = {q for q, c in classes.items() if c["offload"] > 0.9}
    assert 12 <= len(fully) <= 17

    # Q18's spill is the monster: its group count tracks the order
    # count (1.5 B at SF-1000 in the paper; proportional here).
    n_orders = table_cardinality("orders", evaluation_sf(evaluation))
    assert classes["q18"]["spill"] > 0.5 * n_orders

    # The string-bound queries do essentially nothing on the device.
    for q in ("q09", "q13", "q22"):
        assert classes[q]["offload"] < 0.1


def evaluation_sf(evaluation):
    any_trace = next(iter(evaluation.host_traces.values()))
    return any_trace.scale_factor


def test_16gb_dram_sensitivity(benchmark, evaluation):
    def affected():
        hit = set()
        for q in evaluation.simulations:
            t40 = evaluation.aquoman_traces[q]
            t16 = evaluation.aquoman16_traces[q]
            if (
                SuspendReason.DRAM_EXCEEDED.value in t16.suspend_reason
                and SuspendReason.DRAM_EXCEEDED.value
                not in t40.suspend_reason
            ):
                hit.add(q)
        return hit

    hit = benchmark(affected)
    print_table(
        "Queries affected by 16 GB device DRAM (paper: q4 q5 q8 q21)",
        ["affected"],
        [[q] for q in sorted(hit)] or [["none"]],
    )
    # A couple of join-heavy queries, q5/q21 among them.
    assert {"q05", "q21"} <= hit
    assert len(hit) <= 5
