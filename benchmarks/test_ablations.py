"""Ablations of AQUOMAN's design choices.

Each ablation turns one mechanism off and measures what it was buying:

- **page skipping** (Table Reader, Sec. VI-B) — stream every page vs
  skip fully-masked ones on a selective query;
- **the MonetDB join-index shortcut** (Sec. VI-D) — gather through the
  materialised FK RowIDs vs sort-merge the keys through device DRAM;
- **the OS page cache** (Sec. VIII-A) — the paper's observation that a
  128 GB LRU cache is useless against 1 TB scans;
- **selector-first filtering** (Sec. VI-A) — evaluate cheap CP terms
  before streaming the remaining columns vs streaming everything.
"""


from conftest import TARGET_SF, print_table
from repro.core import AquomanSimulator, DeviceConfig
from repro.engine.pagecache import LruPageCache
from repro.sqlir import AggFunc, col, lit, lit_date, scan
from repro.storage.layout import FlashLayout
from repro.tpch import query
from repro.util.units import GB


def _ratio(db):
    return TARGET_SF / db.scale_factor


def test_ablation_page_skipping(benchmark, db):
    """Selective date filter: page skip cuts the payload-column reads."""
    plan_selective = (
        scan("lineitem", ("l_shipdate", "l_extendedprice"))
        .filter(col("l_shipdate") == lit_date("1994-03-07"))
        .project(v=col("l_extendedprice"))
        .aggregate(aggs=[("s", AggFunc.SUM, col("v"))])
        .plan
    )

    def run():
        cfg = DeviceConfig(dram_bytes=40 * GB, scale_ratio=_ratio(db))
        return AquomanSimulator(db, cfg).run(plan_selective).trace

    trace = benchmark(run)

    # Without skipping, the device would stream both full columns.
    layout = FlashLayout(db)
    full_bytes = sum(
        layout.extent("lineitem", c).n_pages * 8192
        for c in ("l_shipdate", "l_extendedprice")
    )
    with_skip = trace.aquoman_flash_bytes
    print_table(
        "Ablation: Table Reader page skipping (one-day filter)",
        ["config", "flash bytes", "vs no-skip"],
        [
            ["no skipping", full_bytes, "1.00x"],
            ["with skipping", with_skip,
             f"{full_bytes / with_skip:.2f}x less"],
        ],
    )
    # The selector column is read in full; the payload column skips
    # most pages (one-day selectivity ~1/2500 rows; pages ~1000 rows).
    assert with_skip < full_bytes


def test_ablation_join_index(benchmark, db):
    """Q12's orders join: FK RowID gather vs sort-merge through DRAM."""

    def run():
        cfg = DeviceConfig(dram_bytes=40 * GB, scale_ratio=_ratio(db))
        with_index = AquomanSimulator(db, cfg).run(query(12)).trace

        # Ablate by filtering the orders side trivially, which makes
        # the scan non-bare and forfeits the shortcut.
        from repro.tpch.queries import q12 as q12mod

        plan = q12mod.build()
        from repro.sqlir.plan import Filter, Join

        join = next(n for n in plan.walk() if isinstance(n, Join))
        # The filter must actually drop a row, else the runtime notices
        # the orders side is still whole and keeps the shortcut.
        join.right = Filter(join.right, col("o_orderkey") >= lit(2))
        without_index = AquomanSimulator(db, cfg).run(plan).trace
        return with_index, without_index

    with_index, without_index = benchmark(run)
    print_table(
        "Ablation: MonetDB join-index shortcut on q12",
        ["config", "device DRAM peak (B, functional scale)",
         "sorter bytes"],
        [
            ["with join index", with_index.aquoman_dram_peak_bytes,
             with_index.aquoman_sorter_bytes],
            ["sort-merge", without_index.aquoman_dram_peak_bytes,
             without_index.aquoman_sorter_bytes],
        ],
    )
    assert with_index.aquoman_dram_peak_bytes == 0
    assert without_index.aquoman_dram_peak_bytes > 0
    assert without_index.aquoman_sorter_bytes > with_index.aquoman_sorter_bytes


def test_ablation_page_cache(benchmark):
    """The paper's cold-cache assumption: LRU against scans at scale.

    A cache holding 12.5% of the table sees zero hits across repeated
    sequential scans; a cache holding the whole working set sees ~100%.
    """

    def run():
        page = 8192
        big_scan = LruPageCache(capacity_bytes=1000 * page)
        for _ in range(3):
            big_scan.access_range(0, 8000)  # 8x the cache
        fitting = LruPageCache(capacity_bytes=10_000 * page)
        for _ in range(3):
            fitting.access_range(0, 8000)
        return big_scan.hit_rate, fitting.hit_rate

    scan_rate, fit_rate = benchmark(run)
    print_table(
        "Ablation: LRU page cache vs scan-dominated access",
        ["working set", "hit rate"],
        [
            ["8x cache (the 1 TB case)", f"{scan_rate:.0%}"],
            ["fits in cache", f"{fit_rate:.0%}"],
        ],
    )
    assert scan_rate == 0.0
    assert fit_rate > 0.6


def test_ablation_selector_first(benchmark, db):
    """Selector-first vs transform-everything on a selective filter.

    With the Row Selector absorbing the CP terms, almost no rows reach
    the Row Transformer; with the selector disabled (0 evaluators), the
    whole predicate — and therefore every row — goes through the PE
    pipeline.
    """
    plan = (
        scan("lineitem", ("l_shipdate", "l_quantity", "l_extendedprice"))
        .filter(
            (col("l_shipdate") == lit_date("1994-03-07"))
            & ((col("l_quantity") * 2) > col("l_quantity"))  # PE-only term
        )
        .project(v=col("l_extendedprice") * 2)
        .aggregate(aggs=[("s", AggFunc.SUM, col("v"))])
        .plan
    )

    def run():
        ratio = _ratio(db)
        with_selector = AquomanSimulator(
            db, DeviceConfig(dram_bytes=40 * GB, scale_ratio=ratio)
        ).run(plan)
        ablated_plan = (
            scan("lineitem",
                 ("l_shipdate", "l_quantity", "l_extendedprice"))
            .filter(
                (col("l_shipdate") == lit_date("1994-03-07"))
                & ((col("l_quantity") * 2) > col("l_quantity"))
            )
            .project(v=col("l_extendedprice") * 2)
            .aggregate(aggs=[("s", AggFunc.SUM, col("v"))])
            .plan
        )
        without = AquomanSimulator(
            db,
            DeviceConfig(
                dram_bytes=40 * GB,
                scale_ratio=ratio,
                n_predicate_evaluators=0,
            ),
        ).run(ablated_plan)
        return with_selector, without

    with_selector, without = benchmark(run)
    rows_with = with_selector.device.meters.rows_transformed
    rows_without = without.device.meters.rows_transformed
    print_table(
        "Ablation: Row Selector first-cut (one-day filter)",
        ["config", "rows through the transformer"],
        [
            ["4 CP evaluators", rows_with],
            ["no selector (all to PEs)", rows_without],
        ],
    )
    # Identical answers either way...
    assert with_selector.table.equals(without.table)
    # ...but the selector spares the transform pipeline most rows.
    assert rows_without > 10 * max(rows_with, 1)
