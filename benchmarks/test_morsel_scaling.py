"""Morsel streaming throughput: rows/sec vs workers and morsel size.

A Q6-class scan (selective filter + int-SUM reduction over lineitem)
through the engine's morsel path, swept over ``n_workers`` ∈ {1, 2, 4}
and three morsel sizes.  The NumPy kernels release the GIL, so on a
multi-core host the worker sweep must show real scaling (≥2x at 4
workers); on a single-core host (CI containers) the assertion degrades
to "threading overhead stays bounded".  The sweep is emitted as
``BENCH_morsel_scaling.json`` next to the other ``BENCH_*`` artifacts.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_table, record_run
from repro.engine import Engine, MorselConfig
from repro.sqlir import AggFunc, col, lit, lit_date, scan

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_morsel_scaling.json"

WORKER_SWEEP = (1, 2, 4)
MORSEL_SWEEP = (8192, 16384, 32768)
REPEATS = 3


def _q6_class_plan():
    return (
        scan("lineitem")
        .filter(
            (col("l_shipdate") >= lit_date("1994-01-01"))
            & (col("l_shipdate") < lit_date("1995-01-01"))
            & (col("l_quantity") < lit(24))
        )
        .aggregate(
            aggs=[
                ("n", AggFunc.COUNT, None),
                ("qty", AggFunc.SUM, col("l_quantity")),
            ]
        )
        .plan
    )


def _rows_per_sec(db, morsel_rows, n_workers):
    engine = Engine(
        db,
        morsels=MorselConfig(
            parallel=True, morsel_rows=morsel_rows, n_workers=n_workers
        ),
    )
    plan = _q6_class_plan()
    nrows = db.table("lineitem").nrows
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = engine.execute_relation(plan)
        best = min(best, time.perf_counter() - start)
    return nrows / best, result


def test_morsel_scaling(benchmark, db):
    def run():
        workers = {}
        reference = None
        for n_workers in WORKER_SWEEP:
            rate, rel = _rows_per_sec(db, 8192, n_workers)
            workers[n_workers] = rate
            if reference is None:
                reference = rel
            else:
                assert np.array_equal(
                    rel.column("qty").values, reference.column("qty").values
                )
        sizes = {
            rows: _rows_per_sec(db, rows, 1)[0] for rows in MORSEL_SWEEP
        }
        return workers, sizes

    workers, sizes = benchmark.pedantic(run, rounds=1, iterations=1)

    cpus = os.cpu_count() or 1
    print_table(
        "Morsel scaling: rows/sec vs workers (morsel_rows=8192)",
        ["workers", "M rows/s", "speedup vs 1"],
        [
            [n, f"{workers[n] / 1e6:.2f}", f"{workers[n] / workers[1]:.2f}x"]
            for n in WORKER_SWEEP
        ],
    )
    print_table(
        "Morsel scaling: rows/sec vs morsel size (1 worker)",
        ["morsel_rows", "M rows/s"],
        [[rows, f"{sizes[rows] / 1e6:.2f}"] for rows in MORSEL_SWEEP],
    )

    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "morsel_scaling",
                "query": "q6-class filter + int-SUM over lineitem",
                "lineitem_rows": db.table("lineitem").nrows,
                "cpu_count": cpus,
                "repeats_best_of": REPEATS,
                "rows_per_sec_by_workers": {
                    str(n): workers[n] for n in WORKER_SWEEP
                },
                "rows_per_sec_by_morsel_rows": {
                    str(r): sizes[r] for r in MORSEL_SWEEP
                },
                "speedup_4_vs_1": workers[4] / workers[1],
            },
            indent=2,
        )
        + "\n"
    )

    # One probe run whose trace yields the machine-independent metric
    # (scan bytes) the committed baseline can gate on; the wall-clock
    # rates ride along under noise-tolerant prefixes.
    probe = Engine(
        db,
        morsels=MorselConfig(parallel=True, morsel_rows=8192, n_workers=1),
    )
    probe.execute_relation(_q6_class_plan())
    record_run(
        "morsel_scaling",
        {
            "model.flash_bytes": float(probe.trace.total_flash_bytes),
            "speedup.workers4": workers[4] / workers[1],
            "rate.rows_per_sec_w1": workers[1],
            "rate.rows_per_sec_w4": workers[4],
        },
        meta={"cpu_count": cpus,
              "lineitem_rows": db.table("lineitem").nrows},
    )

    if cpus >= 4:
        # The acceptance bar: GIL-releasing kernels on 4 real cores.
        assert workers[4] >= 2.0 * workers[1], (
            f"4-worker speedup {workers[4] / workers[1]:.2f}x < 2x"
        )
    else:
        # Single/dual-core host: threads cannot speed this up — only
        # check that the pool does not drown the pipeline in overhead.
        assert workers[4] >= 0.5 * workers[1], (
            f"4-worker throughput collapsed to "
            f"{workers[4] / workers[1]:.2f}x of single-worker"
        )
    # Bigger morsels amortise dispatch; the sweep must not be wildly
    # inverted (tiny morsels an order of magnitude faster is a bug).
    assert sizes[32768] >= 0.3 * sizes[8192]
