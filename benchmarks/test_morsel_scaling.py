"""Morsel streaming throughput: rows/sec vs workers, backend, morsel size.

A Q6-class scan (selective filter + int-SUM reduction over lineitem)
through the engine's morsel path, swept over ``n_workers`` ∈ {1, 2, 4}
for both the thread and the process backend, plus a morsel-size sweep
at one worker.  The thread backend is GIL-bound on Python-level
dispatch; the process backend forks genuinely concurrent interpreters
over shared column pages, so on a multi-core host it must show real
scaling (the acceptance bar: ≥2.5x at 4 workers).  On a single-core
host (CI containers) neither backend can scale and the assertions
degrade to "parallel overhead stays bounded" for threads and
recording-only for processes (IPC on one core is pure overhead).  The
sweep is emitted as ``BENCH_morsel_scaling.json`` next to the other
``BENCH_*`` artifacts.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import print_table, record_run
from repro.engine import Engine, MorselConfig
from repro.engine.morsel import MAX_FRAGMENT_MORSELS, TUNED_MORSEL_ROWS
from repro.engine.procpool import process_backend_available
from repro.sqlir import AggFunc, col, lit, lit_date, scan

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_morsel_scaling.json"

WORKER_SWEEP = (1, 2, 4)
BACKENDS = ("thread", "process") if process_backend_available() \
    else ("thread",)
MORSEL_SWEEP = (8192, 16384, 32768)
REPEATS = 3


def _q6_class_plan():
    return (
        scan("lineitem")
        .filter(
            (col("l_shipdate") >= lit_date("1994-01-01"))
            & (col("l_shipdate") < lit_date("1995-01-01"))
            & (col("l_quantity") < lit(24))
        )
        .aggregate(
            aggs=[
                ("n", AggFunc.COUNT, None),
                ("qty", AggFunc.SUM, col("l_quantity")),
            ]
        )
        .plan
    )


def _rows_per_sec(db, morsel_rows, n_workers, backend="thread"):
    engine = Engine(
        db,
        morsels=MorselConfig(
            parallel=True,
            morsel_rows=morsel_rows,
            n_workers=n_workers,
            worker_backend=backend,
        ),
    )
    plan = _q6_class_plan()
    nrows = db.table("lineitem").nrows
    # Warm once outside the clock: forks the pool (process backend) and
    # faults the column pages in.
    engine.execute_relation(plan)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = engine.execute_relation(plan)
        best = min(best, time.perf_counter() - start)
    return nrows / best, result


def test_morsel_scaling(benchmark, db):
    def run():
        rates = {backend: {} for backend in BACKENDS}
        reference = None
        for backend in BACKENDS:
            for n_workers in WORKER_SWEEP:
                rate, rel = _rows_per_sec(db, 8192, n_workers, backend)
                rates[backend][n_workers] = rate
                if reference is None:
                    reference = rel
                else:
                    assert np.array_equal(
                        rel.column("qty").values,
                        reference.column("qty").values,
                    )
        sizes = {
            rows: _rows_per_sec(db, rows, 1)[0] for rows in MORSEL_SWEEP
        }
        return rates, sizes

    rates, sizes = benchmark.pedantic(run, rounds=1, iterations=1)

    cpus = os.cpu_count() or 1
    for backend in BACKENDS:
        workers = rates[backend]
        print_table(
            f"Morsel scaling [{backend}]: rows/sec vs workers "
            "(morsel_rows=8192)",
            ["workers", "M rows/s", "speedup vs 1"],
            [
                [n, f"{workers[n] / 1e6:.2f}",
                 f"{workers[n] / workers[1]:.2f}x"]
                for n in WORKER_SWEEP
            ],
        )
    print_table(
        "Morsel scaling: rows/sec vs morsel size (1 worker)",
        ["morsel_rows", "M rows/s"],
        [[rows, f"{sizes[rows] / 1e6:.2f}"] for rows in MORSEL_SWEEP],
    )

    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "morsel_scaling",
                "query": "q6-class filter + int-SUM over lineitem",
                "lineitem_rows": db.table("lineitem").nrows,
                "cpu_count": cpus,
                "repeats_best_of": REPEATS,
                "backends": list(BACKENDS),
                "rows_per_sec_by_workers": {
                    backend: {
                        str(n): rates[backend][n] for n in WORKER_SWEEP
                    }
                    for backend in BACKENDS
                },
                "rows_per_sec_by_morsel_rows": {
                    str(r): sizes[r] for r in MORSEL_SWEEP
                },
                "speedup_4_vs_1": {
                    backend: rates[backend][4] / rates[backend][1]
                    for backend in BACKENDS
                },
                # the retune the size sweep justifies (satellite of the
                # process-backend PR): CLI defaults moved 8192 -> 32768
                "tuned_morsel_rows": TUNED_MORSEL_ROWS,
                "max_fragment_morsels": MAX_FRAGMENT_MORSELS,
            },
            indent=2,
        )
        + "\n"
    )

    # One probe run whose trace yields the machine-independent metric
    # (scan bytes) the committed baseline can gate on; the wall-clock
    # rates ride along under noise-tolerant prefixes.
    probe = Engine(
        db,
        morsels=MorselConfig(parallel=True, morsel_rows=8192, n_workers=1),
    )
    probe.execute_relation(_q6_class_plan())
    thread = rates["thread"]
    metrics = {
        "model.flash_bytes": float(probe.trace.total_flash_bytes),
        "speedup.workers4": thread[4] / thread[1],
        "rate.rows_per_sec_w1": thread[1],
        "rate.rows_per_sec_w4": thread[4],
    }
    if "process" in rates:
        metrics["speedup.workers4_process"] = (
            rates["process"][4] / rates["process"][1]
        )
    record_run(
        "morsel_scaling",
        metrics,
        meta={"cpu_count": cpus,
              "lineitem_rows": db.table("lineitem").nrows},
    )

    if cpus >= 4:
        # The acceptance bar: genuinely concurrent interpreters must
        # beat the GIL-bound thread pool and scale on real cores.
        if "process" in rates:
            proc = rates["process"]
            assert proc[4] >= 2.5 * proc[1], (
                f"process 4-worker speedup {proc[4] / proc[1]:.2f}x < 2.5x"
            )
        assert thread[4] >= 2.0 * thread[1], (
            f"thread 4-worker speedup {thread[4] / thread[1]:.2f}x < 2x"
        )
    else:
        # Single/dual-core host: no backend can speed this up — only
        # check the thread pool does not drown the pipeline in
        # overhead.  Process IPC on one core is pure overhead, so its
        # numbers are recorded but not gated.
        assert thread[4] >= 0.5 * thread[1], (
            f"4-worker throughput collapsed to "
            f"{thread[4] / thread[1]:.2f}x of single-worker"
        )
    # Bigger morsels amortise dispatch; the sweep must not be wildly
    # inverted (tiny morsels an order of magnitude faster is a bug).
    assert sizes[32768] >= 0.3 * sizes[8192]
