"""Table V — 1 GB-Block Streaming Sorter throughput.

Regenerates the paper's grid: input length {1, 10, 100, 1000} GB x
sortedness {sorted, reverse-sorted, random}, from the calibrated
shared-VCAS throughput model driven by measured alternation rates of
real sample streams.  Shape requirements: random input sorts *faster*
than pre-sorted input, throughput grows with input length, and the
sorter clears AQUOMAN's 4 GB/s pipeline rate everywhere.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core.swissknife.sorter import (
    SorterThroughputModel,
    StreamingSorter,
)
from repro.util.units import GB

PAPER_CELLS = {
    # (GB, sortedness): paper-reported GB/s
    (1, "sorted"): 4.4, (1, "reverse"): 4.4, (1, "random"): 6.2,
    (10, "sorted"): 7.9, (10, "reverse"): 7.9, (10, "random"): 11.0,
    (100, "sorted"): 8.5, (100, "reverse"): 8.5, (100, "random"): 11.9,
    (1000, "sorted"): 8.6, (1000, "reverse"): 8.6, (1000, "random"): 12.0,
}


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(42)
    random = rng.integers(0, 1 << 62, size=1 << 16)
    return {
        "sorted": np.sort(random),
        "reverse": np.sort(random)[::-1],
        "random": random,
    }


def test_table5_throughput_grid(benchmark, samples):
    model = SorterThroughputModel()

    def compute():
        grid = {}
        for kind, sample in samples.items():
            alternation = model.alternation_probability(sample)
            for size_gb in (1, 10, 100, 1000):
                grid[(size_gb, kind)] = (
                    model.throughput(size_gb * GB, alternation) / GB
                )
        return grid

    grid = benchmark(compute)

    rows = []
    for size_gb in (1, 10, 100, 1000):
        rows.append(
            [
                size_gb,
                f"{grid[(size_gb, 'sorted')]:.1f}",
                f"{grid[(size_gb, 'reverse')]:.1f}",
                f"{grid[(size_gb, 'random')]:.1f}",
                f"{PAPER_CELLS[(size_gb, 'sorted')]:.1f}/"
                f"{PAPER_CELLS[(size_gb, 'random')]:.1f}",
            ]
        )
    print_table(
        "Table V: Streaming Sorter throughput (GB/s)",
        ["GB", "sorted", "reverse", "random", "paper s/r"],
        rows,
    )

    for (size_gb, kind), expected in PAPER_CELLS.items():
        assert grid[(size_gb, kind)] == pytest.approx(expected, rel=0.12)
    # The paradox the paper measured: random input sorts faster.
    for size_gb in (1, 10, 100, 1000):
        assert grid[(size_gb, "random")] > grid[(size_gb, "sorted")]
    # And the sorter keeps up with the 4 GB/s pipeline everywhere.
    assert min(grid.values()) >= 4.0


def test_functional_sorter_blocks(benchmark):
    """The functional block sorter under the model: sorted output,
    correct block structure, at NumPy speed."""
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 1 << 60, size=200_000)
    payload = np.arange(len(keys), dtype=np.int64)

    def run():
        sorter = StreamingSorter(element_bytes=16, block_bytes=1 << 20)
        return sorter.sort_blocks(keys, payload)

    blocks = benchmark(run)
    assert len(blocks) == 4  # 200k x 16 B over 1 MiB blocks
    for k, p in blocks:
        assert (np.diff(k) >= 0).all()
        assert np.array_equal(keys[p], k)  # payload stays attached
