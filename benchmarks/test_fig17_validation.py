"""Fig. 17 — validating the analytic model against the prototype model.

The paper ran q1/q6 (no joins) and q3/q10 (multi-way joins under 4 GB
device DRAM) on the FPGA and compared against the trace-based
simulator, finding matching run times and identical memory usage.

Our substitution keeps the method with two *independent* computations:
a component-cycle estimate (flash controller + Row Selector + PE array
+ sorter, each from its own activity counters at prototype clock rates)
versus the aggregate byte-rate model behind Fig. 16.  They must agree
on run time within 30% and exactly on device memory.
"""


from conftest import TARGET_SF, print_table
from repro.perf.model import AQUOMAN_40GB, HOST_L, SystemModel
from repro.perf.validation import validate_device_timing

VALIDATION_QUERIES = ("q01", "q06", "q03", "q10")


def test_fig17_model_validation(benchmark, db, evaluation):
    scale_ratio = TARGET_SF / db.scale_factor
    model = SystemModel(HOST_L, AQUOMAN_40GB)

    def compute():
        pairs = {}
        for q in VALIDATION_QUERIES:
            sim = evaluation.simulations[q]
            pairs[q] = validate_device_timing(
                sim.trace, sim.device, scale_ratio, model
            )
        return pairs

    pairs = benchmark(compute)

    rows = [
        [
            q,
            f"{p.prototype_s:.1f}",
            f"{p.simulator_s:.1f}",
            f"{100 * p.relative_error:.0f}%",
        ]
        for q, p in pairs.items()
    ]
    print_table(
        "Fig 17: prototype-model vs trace-model device seconds",
        ["query", "prototype", "simulator", "error"],
        rows,
    )

    for q, pair in pairs.items():
        assert pair.simulator_s > 0, f"{q} ran nothing on the device"
        assert pair.relative_error < 0.30, (
            f"{q}: prototype {pair.prototype_s:.1f}s vs "
            f"simulator {pair.simulator_s:.1f}s"
        )

    # Memory agreement is exact: both sides read the same DRAM gauge
    # (the paper's Fig. 17 bottom panel shows identical bars).
    for q in VALIDATION_QUERIES:
        sim = evaluation.simulations[q]
        assert sim.trace.aquoman_dram_peak_bytes == (
            sim.device.memory.peak_effective / scale_ratio
        )
