"""Fig. 16(a) — TPC-H SF-1000 run time per query on the five systems.

Regenerates the paper's bar chart as a table: S, L, S-AQUOMAN,
L-AQUOMAN, S-AQUOMAN16 for every query plus the total.  The shape
requirements checked are the ones the paper's narrative rests on:

- adding AQUOMAN to L speeds the average query up 1.5-2x;
- queries 17/18 are the big outliers (serial host group-by replaced by
  the device-assisted stream);
- disk-bound q6 gains almost nothing (it only saves host resources);
- string-heap-bound q9/q13/q22 gain nothing at all;
- the totals put S-AQUOMAN16 and L within ~15% of each other.
"""

import pytest

from conftest import DATA_SF, append_run_records, print_table
from repro.perf.tpch_eval import run_records


def test_fig16a_runtimes(benchmark, evaluation):
    report = benchmark(lambda: evaluation.report(1000.0))
    append_run_records(
        run_records(report, meta={"sf": DATA_SF, "target_sf": 1000.0})
    )

    rows = []
    for q in report.queries:
        r = {s: report.timing(q, s).runtime_s for s in report.systems}
        rows.append(
            [
                q,
                f"{r['S']:.0f}",
                f"{r['L']:.0f}",
                f"{r['S-AQUOMAN']:.0f}",
                f"{r['L-AQUOMAN']:.0f}",
                f"{r['S-AQUOMAN16']:.0f}",
                f"{r['L'] / r['L-AQUOMAN']:.1f}x",
            ]
        )
    totals = {s: report.total_runtime(s) for s in report.systems}
    rows.append(
        [
            "total",
            f"{totals['S']:.0f}",
            f"{totals['L']:.0f}",
            f"{totals['S-AQUOMAN']:.0f}",
            f"{totals['L-AQUOMAN']:.0f}",
            f"{totals['S-AQUOMAN16']:.0f}",
            f"{totals['L'] / totals['L-AQUOMAN']:.1f}x",
        ]
    )
    print_table(
        "Fig 16(a): run time (s), TPC-H SF-1000",
        ["query", "S", "L", "S-AQ", "L-AQ", "S-AQ16", "L speedup"],
        rows,
    )

    # Average L speedup in the paper's 1.5-2x band.
    assert 1.4 <= totals["L"] / totals["L-AQUOMAN"] <= 2.5

    def speedup(q):
        return (
            report.timing(q, "L").runtime_s
            / report.timing(q, "L-AQUOMAN").runtime_s
        )

    # The outliers are q17/q18 (the paper's "up to 13x" pair).
    best_two = sorted(report.queries, key=speedup, reverse=True)[:2]
    assert set(best_two) == {"q17", "q18"}
    assert speedup("q17") > 3.0

    # Disk-bound q6: almost no speedup (resources saved, not time).
    assert speedup("q06") < 1.25

    # String-heap-bound queries gain nothing.
    for q in ("q09", "q13", "q22"):
        assert speedup(q) == pytest.approx(1.0, abs=0.08)

    # S grows slower than its 8x thread deficit would suggest
    # (the paper's S/L average is ~1.6x; ours lands under 2.5x).
    assert 1.3 <= totals["S"] / totals["L"] <= 2.5
