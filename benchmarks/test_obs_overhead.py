"""Observability overhead: disabled tracing must be free.

Every instrumentation point in the executors costs one attribute load
plus one no-op context manager when tracing is disabled (the default).
The gate multiplies that measured per-site cost by the number of span
sites a query actually executes (counted by running the same query
under a live tracer) and requires the product to stay under 2% of the
query's runtime.  That product is deterministic where a direct A/B
timing of millisecond-scale queries is noise-bound; the A/B ratio is
still reported informationally, along with the enabled-mode cost.

The query log gets the same treatment: one ``query_scope`` cycle with
a log installed (context mint, plan fingerprint, metrics delta, wide
event build + JSONL append; sampling off) is microbenchmarked per
query, multiplied by the wide events a run emits, and the product must
stay under 3% of the disabled runtime.

The time-series sampler is gated on duty cycle rather than per-query
cost: one ``store.sample()`` tick over a realistically populated
registry (fleet counters, labeled latency histograms) is
microbenchmarked, and at the default 1 Hz cadence the tick must
occupy under 1% of wall time — the sampler holds the store lock for
that fraction, so this is also the worst-case read-path stall.
Results land in ``BENCH_obs_overhead.json``.
"""

import json
import time
from pathlib import Path

from conftest import print_table
from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.engine import Engine
from repro.obs import NULL_TRACER, Tracer

ARTIFACT = (
    Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"
)

REPEATS = 5
QUERIES = (1, 6, 14)
DISABLED_BUDGET_PCT = 2.0
QLOG_BUDGET_PCT = 3.0
NULL_SITE_CALLS = 200_000
QLOG_CYCLES = 200
# One _run_both = engine query + simulator run = two wide events.
EVENTS_PER_RUN = 2
SAMPLER_BUDGET_PCT = 1.0
SAMPLER_HZ = 1.0
SAMPLE_TICKS = 300


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _null_site_ns() -> float:
    """Cost of one disabled instrumentation point, in nanoseconds."""
    span = NULL_TRACER.span

    def loop():
        for _ in range(NULL_SITE_CALLS):
            with span("x"):
                pass

    return _best_of(loop) / NULL_SITE_CALLS * 1e9


def _run_both(db, plan, name, tracer):
    Engine(db, tracer=tracer).execute_relation(plan)
    AquomanSimulator(
        db, DeviceConfig(scale_ratio=1000 / 0.01), tracer=tracer
    ).run(plan, query=name)


def _qlog_cycle_s(plan, name, tmp_path) -> float:
    """Cost of one full wide-event cycle for this query's plan."""
    from repro.obs.qlog import QueryLog, query_scope, set_query_log

    log = QueryLog(str(tmp_path / f"{name}.qlog.jsonl"))
    set_query_log(log)
    try:
        def loop():
            for _ in range(QLOG_CYCLES):
                with query_scope(plan, query=name, backend="serial"):
                    pass

        best = _best_of(loop)
    finally:
        set_query_log(None)
    return best / QLOG_CYCLES


def _sampler_tick_s() -> float:
    """Cost of one rollup-ring sample over a fleet-shaped registry."""
    from repro.obs.metrics import LATENCY_BUCKETS_MS, MetricsRegistry
    from repro.obs.timeseries import TimeSeriesStore

    registry = MetricsRegistry()
    completed = registry.counter("query.completed")
    latency = registry.histogram(
        "query.latency_ms", buckets=LATENCY_BUCKETS_MS
    )
    for backend in ("serial", "thread", "process"):
        completed.labels(backend=backend).inc(10)
        for i in range(20):
            latency.labels(backend=backend).observe(5.0 + i)
    registry.counter("query.faulted").labels(backend="serial").inc()
    registry.gauge("serve.depth").set(2)
    store = TimeSeriesStore(registry)
    store.sample()  # baselines outside the timed loop

    def loop():
        for i in range(SAMPLE_TICKS):
            # Keep counters moving so every tick writes real deltas.
            completed.labels(backend="serial").inc()
            latency.labels(backend="serial").observe(float(i % 50))
            store.sample()

    return _best_of(loop) / SAMPLE_TICKS


def test_obs_overhead(benchmark, db, tmp_path):
    def run():
        site_ns = _null_site_ns()
        rows = {}
        for n in QUERIES:
            name = f"q{n:02d}"
            plan = tpch.query(n)
            disabled_s = _best_of(
                lambda p=plan: _run_both(db, p, name, None)
            )
            # Count the span sites this query executes: a live tracer
            # records exactly one tuple per site reached.
            counter = Tracer()
            _run_both(db, plan, name, counter)
            n_sites = counter.n_records
            enabled_s = _best_of(
                lambda p=plan: _run_both(db, p, name, Tracer())
            )
            disabled_pct = (
                n_sites * site_ns / (disabled_s * 1e9) * 100.0
            )
            cycle_s = _qlog_cycle_s(plan, name, tmp_path)
            qlog_pct = (
                EVENTS_PER_RUN * cycle_s / disabled_s * 100.0
            )
            rows[name] = (
                disabled_s, enabled_s, n_sites, disabled_pct,
                cycle_s, qlog_pct,
            )
        return site_ns, rows, _sampler_tick_s()

    site_ns, rows, tick_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    sampler_pct = tick_s * SAMPLER_HZ * 100.0

    print_table(
        f"Tracing overhead per query (SF-0.01, best of {REPEATS}; "
        f"null span site = {site_ns:.0f} ns)",
        ["query", "disabled ms", "enabled ms", "sites",
         "disabled %", "qlog us/ev", "qlog %", "enabled x"],
        [
            [
                name,
                f"{d * 1e3:.1f}",
                f"{e * 1e3:.1f}",
                sites,
                f"{pct:.3f}",
                f"{cyc * 1e6:.1f}",
                f"{qpct:.3f}",
                f"{e / d:.3f}",
            ]
            for name, (d, e, sites, pct, cyc, qpct) in rows.items()
        ],
    )
    print(
        f"sampler tick {tick_s * 1e6:.1f} us -> "
        f"{sampler_pct:.4f}% duty at {SAMPLER_HZ:g} Hz "
        f"(budget {SAMPLER_BUDGET_PCT:g}%)"
    )

    worst = max(rows, key=lambda n: rows[n][3])
    worst_qlog = max(rows, key=lambda n: rows[n][5])
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "obs_overhead",
                "scale_factor": 0.01,
                "repeats_best_of": REPEATS,
                "null_span_site_ns": site_ns,
                "disabled_budget_pct": DISABLED_BUDGET_PCT,
                "qlog_budget_pct": QLOG_BUDGET_PCT,
                "worst_query": worst,
                "worst_disabled_overhead_pct": rows[worst][3],
                "worst_qlog_query": worst_qlog,
                "worst_qlog_overhead_pct": rows[worst_qlog][5],
                "sampler_budget_pct": SAMPLER_BUDGET_PCT,
                "sampler_tick_s": tick_s,
                "sampler_overhead_pct_1hz": sampler_pct,
                "per_query": {
                    name: {
                        "disabled_s": d,
                        "enabled_s": e,
                        "span_sites": sites,
                        "disabled_overhead_pct": pct,
                        "qlog_event_s": cyc,
                        "qlog_overhead_pct": qpct,
                        "enabled_slowdown": e / d,
                    }
                    for name, (d, e, sites, pct, cyc, qpct)
                    in rows.items()
                },
            },
            indent=2,
        )
        + "\n"
    )

    for name, (_d, _e, sites, pct, _cyc, qpct) in rows.items():
        assert sites > 0, f"{name}: tracer saw no instrumentation sites"
        assert pct < DISABLED_BUDGET_PCT, (
            f"{name}: {sites} disabled span sites at {site_ns:.0f} ns "
            f"each cost {pct:.3f}% of the query"
        )
        assert qpct < QLOG_BUDGET_PCT, (
            f"{name}: {EVENTS_PER_RUN} wide events cost {qpct:.3f}% "
            "of the query with the log enabled"
        )
    assert sampler_pct < SAMPLER_BUDGET_PCT, (
        f"one sampler tick takes {tick_s * 1e6:.1f} us: "
        f"{sampler_pct:.4f}% duty cycle at {SAMPLER_HZ:g} Hz"
    )
