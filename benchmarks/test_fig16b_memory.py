"""Fig. 16(b) — maximum / average memory footprints at SF-1000.

Regenerates: max AQUOMAN device DRAM, max and average host RSS for the
L baseline and L-AQUOMAN.  Shape requirements:

- the device needs at most 40 GB (the AQUOMAN config of Table VI), and
  16 GB changes the outcome for a couple of join-heavy queries only;
- AQUOMAN cuts the *average* host RSS by a large factor while the
  *maximum* is dominated by the one query whose spilled group-by still
  needs the host (Q18 in the paper);
- baseline L peaks live in the tens-of-GB to ~DRAM range.
"""


from conftest import print_table
from repro.util.units import GB


def test_fig16b_memory(benchmark, evaluation):
    report = benchmark(lambda: evaluation.report(1000.0))

    rows = []
    for q in report.queries:
        base = report.timing(q, "L")
        augmented = report.timing(q, "L-AQUOMAN")
        rows.append(
            [
                q,
                f"{base.host_peak_bytes / GB:.0f}",
                f"{base.host_avg_bytes / GB:.1f}",
                f"{augmented.host_peak_bytes / GB:.0f}",
                f"{augmented.host_avg_bytes / GB:.1f}",
                f"{augmented.device_peak_bytes / GB:.1f}",
            ]
        )
    print_table(
        "Fig 16(b): memory (GB), TPC-H SF-1000",
        ["query", "L max", "L avg", "L-AQ max", "L-AQ avg", "AQ DRAM"],
        rows,
    )

    device_peaks = [
        report.timing(q, "L-AQUOMAN").device_peak_bytes
        for q in report.queries
    ]
    # 40 GB suffices for every query (Sec. VI-E: "no suspensions due to
    # multi-way Joins" at 40 GB)...
    assert max(device_peaks) <= 40 * GB
    # ...but a couple of queries genuinely need more than 16 GB.
    over_16 = [p for p in device_peaks if p > 16 * GB]
    assert 1 <= len(over_16) <= 5

    # Average host RSS drops by a large factor (paper: ~3x; >=2x here).
    base_avg = sum(
        report.timing(q, "L").host_avg_bytes for q in report.queries
    )
    augmented_avg = sum(
        report.timing(q, "L-AQUOMAN").host_avg_bytes
        for q in report.queries
    )
    assert base_avg / augmented_avg >= 2.0

    # Baseline peaks are in MonetDB's plausible working-set range.
    base_peaks = [
        report.timing(q, "L").host_peak_bytes for q in report.queries
    ]
    assert 10 * GB < max(base_peaks) < 400 * GB
