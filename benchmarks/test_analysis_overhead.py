"""Static-analysis overhead: analyzer time vs query runtime, per query.

The engine analyzes a plan **once, at preparation** — ``Engine`` keeps
a per-plan cache, so every execution after the first pays only the
cache check.  That steady-state cost is what "leave verification on"
means for a resident engine, and it must stay under 1% of the query's
own runtime at SF-0.01 on every TPC-H query.  The one-time preparation
cost (the actual ``types`` + ``morsel`` passes) is capped in absolute
terms instead — at millisecond-scale SF-0.01 query times no Python
tree walk could be 1% of a single cold run, and no engine re-analyzes
an unchanged plan per execution.  The full four-pass analysis (adds
suspend prediction and PE verification, which compile the plan and
consult catalog statistics) is timed informationally — it is a
CLI/planning-time tool, not an inline gate.  Results land in
``BENCH_analysis_overhead.json``.
"""

import json
import time
from pathlib import Path

from conftest import print_table
from repro import tpch
from repro.analysis import analyze_plan
from repro.core import DeviceConfig
from repro.engine import Engine
from repro.util.units import GB

ARTIFACT = (
    Path(__file__).resolve().parent.parent / "BENCH_analysis_overhead.json"
)

REPEATS = 3
STEADY_BUDGET = 0.01      # cached per-execution overhead < 1% of runtime
PREPARE_BUDGET_S = 2e-3   # one-time analysis cost per plan, absolute


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _steady_state_s(engine, plan, calls=1000):
    """Per-call cost of the analysis gate once the plan is prepared."""
    engine._maybe_analyze(plan)  # prepare: real passes run here
    start = time.perf_counter()
    for _ in range(calls):
        engine._maybe_analyze(plan)
    return (time.perf_counter() - start) / calls


def test_analysis_overhead(benchmark, db):
    config = DeviceConfig(dram_bytes=40 * GB, scale_ratio=1000 / 0.01)

    def run():
        rows = {}
        # Warm the catalog-statistics cache (NDV/domain scans) so the
        # full-analysis column shows steady-state planning cost.
        analyze_plan(tpch.query(9), db, device=config)
        for n in tpch.ALL_QUERIES:
            plan = tpch.query(n)
            query_s = _best_of(
                lambda p=plan: Engine(db).execute_relation(p)
            )
            prepare_s = _best_of(
                lambda p=plan: analyze_plan(p, db)  # types + morsel
            )
            steady_s = _steady_state_s(
                Engine(db, analyze="warn"), plan
            )
            full_s = _best_of(
                lambda p=plan: analyze_plan(p, db, device=config)
            )
            rows[n] = (query_s, prepare_s, steady_s, full_s)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Static analysis overhead per TPC-H query (SF-0.01, best of "
        f"{REPEATS})",
        [
            "query",
            "query ms",
            "prepare ms",
            "steady us",
            "steady %",
            "full ms",
        ],
        [
            [
                f"q{n:02d}",
                f"{q * 1e3:.1f}",
                f"{p * 1e3:.2f}",
                f"{s * 1e6:.2f}",
                f"{s / q:.4%}",
                f"{f * 1e3:.2f}",
            ]
            for n, (q, p, s, f) in rows.items()
        ],
    )

    worst = max(rows, key=lambda n: rows[n][2] / rows[n][0])
    ARTIFACT.write_text(
        json.dumps(
            {
                "benchmark": "analysis_overhead",
                "scale_factor": 0.01,
                "repeats_best_of": REPEATS,
                "steady_budget_fraction": STEADY_BUDGET,
                "prepare_budget_s": PREPARE_BUDGET_S,
                "worst_query": f"q{worst:02d}",
                "worst_steady_fraction": rows[worst][2] / rows[worst][0],
                "per_query": {
                    f"q{n:02d}": {
                        "query_s": q,
                        "prepare_analysis_s": p,
                        "steady_state_gate_s": s,
                        "steady_state_fraction": s / q,
                        "full_analysis_s": f,
                    }
                    for n, (q, p, s, f) in rows.items()
                },
            },
            indent=2,
        )
        + "\n"
    )

    for n, (query_s, prepare_s, steady_s, _) in rows.items():
        assert steady_s < STEADY_BUDGET * query_s, (
            f"q{n:02d}: analysis gate {steady_s * 1e6:.2f} us is "
            f"{steady_s / query_s:.2%} of the {query_s * 1e3:.1f} ms "
            "query"
        )
        assert prepare_s < PREPARE_BUDGET_S, (
            f"q{n:02d}: one-time analysis took {prepare_s * 1e3:.2f} ms"
        )
