"""Shared benchmark fixtures.

Every paper figure/table is regenerated from the same session-scoped
trace collection: all 22 queries run on the pure-host engine and on
the AQUOMAN simulator (40 GB and 16 GB device DRAM) at SF-0.01, scaled
to the paper's SF-1000 by the trace-scaling machinery.
"""

import os
from pathlib import Path

import pytest

from repro import tpch
from repro.perf.tpch_eval import collect_traces

DATA_SF = 0.01
TARGET_SF = 1000.0

# Run-record store the perf-regression gate diffs against the committed
# benchmarks/baselines.jsonl (override the path with REPRO_RUN_RECORDS).
RUN_RECORDS = Path(
    os.environ.get(
        "REPRO_RUN_RECORDS",
        Path(__file__).resolve().parent.parent / "BENCH_runs.jsonl",
    )
)


def record_run(bench, metrics, meta=None):
    """Append one structured run record for ``repro perf diff``."""
    from repro.obs.baseline import RunRecord, append_records

    append_records(
        RUN_RECORDS,
        [RunRecord(bench=bench, metrics=metrics, meta=meta or {})],
    )


def append_run_records(records):
    from repro.obs.baseline import append_records

    append_records(RUN_RECORDS, records)


@pytest.fixture(scope="session")
def db():
    return tpch.generate(DATA_SF)


@pytest.fixture(scope="session")
def evaluation(db):
    return collect_traces(db, target_sf=TARGET_SF)


@pytest.fixture(scope="session")
def report(evaluation):
    return evaluation.report(TARGET_SF)


def print_table(title, header, rows):
    """Render one paper table/figure as text in the benchmark output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
