"""Shared benchmark fixtures.

Every paper figure/table is regenerated from the same session-scoped
trace collection: all 22 queries run on the pure-host engine and on
the AQUOMAN simulator (40 GB and 16 GB device DRAM) at SF-0.01, scaled
to the paper's SF-1000 by the trace-scaling machinery.
"""

import json
import os
import re
import time
from pathlib import Path

import pytest

from repro import tpch
from repro.perf.tpch_eval import collect_traces

DATA_SF = 0.01
TARGET_SF = 1000.0

# Run-record store the perf-regression gate diffs against the committed
# benchmarks/baselines.jsonl (override the path with REPRO_RUN_RECORDS).
RUN_RECORDS = Path(
    os.environ.get(
        "REPRO_RUN_RECORDS",
        Path(__file__).resolve().parent.parent / "BENCH_runs.jsonl",
    )
)

# Wide-event mirror of the per-query benchmark metrics: every
# ``model.qNN_<system>_s`` run-record metric also lands here as a wide
# event keyed by the query's plan fingerprint, so ``repro tracediff``
# can diff the perf trajectory against any query-log run.
QUERY_LOG = Path(
    os.environ.get(
        "REPRO_BENCH_QUERY_LOG",
        Path(__file__).resolve().parent.parent / "BENCH_qlog.jsonl",
    )
)

_QUERY_METRIC = re.compile(r"^model\.(q\d{2})_(.+)_s$")


def _wide_events_for(records):
    from repro.obs.context import next_query_id, plan_fingerprint
    from repro.obs.qlog import SCHEMA_VERSION

    events = []
    for record in records:
        for key, value in sorted(record.metrics.items()):
            match = _QUERY_METRIC.match(key)
            if not match:
                continue
            name, system = match.groups()
            events.append({
                "schema": SCHEMA_VERSION,
                "query_id": next_query_id(),
                "query": name,
                "fingerprint": plan_fingerprint(tpch.query(int(name[1:]))),
                "backend": system,
                "seed": None,
                "ts_unix": time.time(),
                "wall_ms": float(value) * 1e3,
                "spans_dropped": 0,
                "critpath": None,
                "counters": {},
                "faults": None,
                "suspend": None,
                "analysis": None,
                "sql_digest": None,
                "trace_path": None,
                "annotations": {"bench": record.bench, "source": "benchmark"},
            })
    return events


def _append_wide_events(records):
    events = _wide_events_for(records)
    if events:
        with open(QUERY_LOG, "a") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")


def record_run(bench, metrics, meta=None):
    """Append one structured run record for ``repro perf diff``."""
    from repro.obs.baseline import RunRecord, append_records

    records = [RunRecord(bench=bench, metrics=metrics, meta=meta or {})]
    append_records(RUN_RECORDS, records)
    _append_wide_events(records)


def append_run_records(records):
    from repro.obs.baseline import append_records

    append_records(RUN_RECORDS, records)
    _append_wide_events(records)


@pytest.fixture(scope="session")
def db():
    return tpch.generate(DATA_SF)


@pytest.fixture(scope="session")
def evaluation(db):
    return collect_traces(db, target_sf=TARGET_SF)


@pytest.fixture(scope="session")
def report(evaluation):
    return evaluation.report(TARGET_SF)


def print_table(title, header, rows):
    """Render one paper table/figure as text in the benchmark output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
