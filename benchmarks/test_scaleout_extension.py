"""Sec. IX future work, implemented: multi-SSD and concurrent queries.

Not a paper figure — the paper explicitly leaves both setups open — but
DESIGN.md commits to building the extensions, and the model makes two
quantitative predictions worth recording:

- distributing a fully-offloaded query over n AQUOMAN SSDs scales its
  streaming time near-linearly until the fixed host part dominates
  (Amdahl knee between 4 and 16 devices for TPC-H);
- under inter-query concurrency, the small plain-SSD host (S: 4
  threads) is CPU-bound while the AQUOMAN host is flash/device-bound —
  so AQUOMAN lifts workload throughput even where single-query latency
  is already disk-limited.
"""


from conftest import TARGET_SF, print_table
from repro.perf.model import AQUOMAN_40GB, HOST_S, SystemModel
from repro.perf.scaleout import MultiDeviceModel, concurrent_makespan
from repro.perf.scaling import scale_trace
from repro.perf.tpch_eval import GROUP_DOMAINS


def _scaled(traces):
    return {
        q: scale_trace(t, TARGET_SF, group_domains=GROUP_DOMAINS)
        for q, t in traces.items()
    }


def test_multi_device_scaling(benchmark, evaluation):
    base = SystemModel(HOST_S, AQUOMAN_40GB)
    trace = _scaled(evaluation.aquoman_traces)["q01"]

    def run():
        return {
            n: MultiDeviceModel(base, n).time_query(trace)
            for n in (1, 2, 4, 8, 16)
        }

    timings = benchmark(run)
    one = timings[1].runtime_s
    rows = [
        [n, f"{t.runtime_s:.0f}", f"{one / t.runtime_s:.2f}x"]
        for n, t in timings.items()
    ]
    print_table(
        "Extension: q1 on an n-device AQUOMAN array (SF-1000)",
        ["devices", "runtime (s)", "speedup"],
        rows,
    )

    # Near-linear at small n for a fully-offloaded streaming query...
    assert one / timings[2].runtime_s > 1.7
    assert one / timings[4].runtime_s > 2.8
    # ...and monotone but sub-linear at the tail (the Amdahl knee).
    assert timings[16].runtime_s < timings[8].runtime_s
    assert one / timings[16].runtime_s < 16


def test_concurrent_query_throughput(benchmark, evaluation):
    def run():
        host = concurrent_makespan(
            SystemModel(HOST_S), _scaled(evaluation.host_traces)
        )
        augmented = concurrent_makespan(
            SystemModel(HOST_S, AQUOMAN_40GB),
            _scaled(evaluation.aquoman_traces),
        )
        return host, augmented

    host, augmented = benchmark(run)
    print_table(
        "Extension: concurrent-query throughput (22-query mix, SF-1000)",
        ["system", "bound by", "makespan (s)", "queries/hour"],
        [
            [host.system, host.binding_resource,
             f"{host.makespan_s:.0f}", f"{host.queries_per_hour:.0f}"],
            [augmented.system, augmented.binding_resource,
             f"{augmented.makespan_s:.0f}",
             f"{augmented.queries_per_hour:.0f}"],
        ],
    )

    # AQUOMAN moves the binding resource off the host CPU...
    assert host.binding_resource == "cpu"
    assert augmented.binding_resource != "cpu"
    # ...and lifts workload throughput.
    assert augmented.queries_per_hour > host.queries_per_hour
