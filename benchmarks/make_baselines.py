"""Regenerate the committed perf baselines.

Writes ``benchmarks/baselines.jsonl`` with the *deterministic* subset
of the benchmark metrics — system-model runtimes and trace byte counts
(``model.`` prefix) — so ``python -m repro perf diff --strict`` gates
CI without wall-clock noise.  Wall-clock rates recorded by the live
benchmarks show up in a diff as NEW and never fail the gate.

Run after any intentional perf/model change::

    PYTHONPATH=src python benchmarks/make_baselines.py
"""

import os
import sys
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro import tpch  # noqa: E402
from repro.engine import Engine, MorselConfig  # noqa: E402
from repro.obs.baseline import RunRecord, append_records  # noqa: E402
from repro.perf.tpch_eval import collect_traces, run_records  # noqa: E402
from repro.sqlir import AggFunc, col, lit, lit_date, scan  # noqa: E402

OUT = Path(__file__).resolve().parent / "baselines.jsonl"
DATA_SF = 0.01
TARGET_SF = 1000.0


def q6_class_plan():
    # Mirrors benchmarks/test_morsel_scaling.py exactly.
    return (
        scan("lineitem")
        .filter(
            (col("l_shipdate") >= lit_date("1994-01-01"))
            & (col("l_shipdate") < lit_date("1995-01-01"))
            & (col("l_quantity") < lit(24))
        )
        .aggregate(
            aggs=[
                ("n", AggFunc.COUNT, None),
                ("qty", AggFunc.SUM, col("l_quantity")),
            ]
        )
        .plan
    )


def main() -> int:
    db = tpch.generate(DATA_SF)
    evaluation = collect_traces(db, target_sf=TARGET_SF)
    records = run_records(
        evaluation.report(TARGET_SF),
        meta={"sf": DATA_SF, "target_sf": TARGET_SF},
    )

    probe = Engine(
        db,
        morsels=MorselConfig(
            parallel=True, morsel_rows=8192, n_workers=1
        ),
    )
    probe.execute_relation(q6_class_plan())
    records.append(
        RunRecord(
            bench="morsel_scaling",
            metrics={
                "model.flash_bytes": float(
                    probe.trace.total_flash_bytes
                ),
            },
            meta={"sf": DATA_SF},
        )
    )

    if OUT.exists():
        os.remove(OUT)
    append_records(OUT, records)
    print(f"wrote {len(records)} baseline records to {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
