"""Sec. VIII-D — device throughput in rows/second (the FCAccel compare).

The paper quotes AQUOMAN's FPGA at 100.5 M rows/s on Q6 (high-
selectivity filter-and-aggregate) and 69 M rows/s on Q1 (low
selectivity + heavy row transform + group-by), against FCAccel's 111M
and 27M.  Shape requirements: both land in the tens-of-millions range
at the 2.4 GB/s flash line rate, and Q6 is faster per row than Q1
(fewer bytes per row on the wire).
"""


from conftest import TARGET_SF, print_table
from repro.perf.model import AQUOMAN_40GB, HOST_L, SystemModel
from repro.perf.scaling import scale_trace
from repro.tpch.schema import table_cardinality


def rows_per_second(evaluation, query):
    trace = scale_trace(evaluation.simulations[query].trace, TARGET_SF)
    device_s = SystemModel(HOST_L, AQUOMAN_40GB).device_seconds(trace)
    rows = table_cardinality("lineitem", TARGET_SF)
    return rows / device_s


def test_device_rows_per_second(benchmark, evaluation):
    rates = benchmark(
        lambda: {q: rows_per_second(evaluation, q) for q in ("q01", "q06")}
    )
    print_table(
        "Device throughput (M rows/s) vs paper's FPGA",
        ["query", "measured", "paper AQUOMAN", "paper FCAccel"],
        [
            ["q01", f"{rates['q01'] / 1e6:.0f}", "69", "27"],
            ["q06", f"{rates['q06'] / 1e6:.0f}", "100.5", "111"],
        ],
    )

    # Q6 streams fewer bytes/row than Q1, so it is faster per row.
    assert rates["q06"] > rates["q01"]
    # Both in the paper's order of magnitude at the flash line rate.
    assert 30e6 < rates["q01"] < 150e6
    assert 50e6 < rates["q06"] < 200e6
