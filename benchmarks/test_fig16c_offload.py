"""Fig. 16(c) — share of run time on AQUOMAN and x86 CPU-cycle saving.

Regenerates the per-query offload fraction (L-AQUOMAN) and the CPU
cycles AQUOMAN frees relative to the L baseline.  Shape requirements:

- ~14 queries run (nearly) entirely on the device;
- q9/q13/q22 run ~0% on the device;
- the mean CPU saving lands in the paper's reported regime (~70%;
  we accept 60-90% given the calibration substitution).
"""


from conftest import print_table


def test_fig16c_offload(benchmark, evaluation):
    report = benchmark(lambda: evaluation.report(1000.0))

    rows = []
    for q in report.queries:
        rows.append(
            [
                q,
                f"{100 * report.device_fraction(q):.0f}%",
                f"{100 * report.cpu_saving(q):.0f}%",
            ]
        )
    rows.append(
        ["mean", "-", f"{100 * report.mean_cpu_saving():.0f}%"]
    )
    print_table(
        "Fig 16(c): device run-time share and CPU-cycle saving (L)",
        ["query", "time on AQUOMAN", "CPU saving"],
        rows,
    )

    fully = [
        q for q in report.queries if report.device_fraction(q) > 0.9
    ]
    assert 12 <= len(fully) <= 17  # paper: 14 of 22

    for q in ("q09", "q13", "q22"):
        assert report.device_fraction(q) < 0.1
        assert report.cpu_saving(q) < 0.1

    assert 0.60 <= report.mean_cpu_saving() <= 0.90
