"""The paper's running example, programmed as literal Table Tasks.

Builds the intro's ``sales_transactions`` / ``inventory`` store
(Sec. III), then runs:

1. the Fig. 1 aggregate query — net sale and revenue per department
   before a date — as ONE Table Task through the Row Selector, the PE
   systolic array, and the Aggregate-GroupBy accelerator;
2. the Fig. 4/Fig. 5 join query — total shoe sales after a date — as a
   chain of Table Tasks communicating through device DRAM, exactly the
   paper's ``tabletask_0/1/2`` listing.

    python examples/sales_analytics.py
"""

import numpy as np

from repro.core import AquomanDevice, SwissknifeOp, TableTask, TaskOutput
from repro.core.device import ROWID
from repro.core.row_selector import (
    ColumnPredicate,
    PredicateOp,
    PredicateProgram,
)
from repro.sqlir.expr import col, lit
from repro.storage import Catalog, Column, Table
from repro.storage.types import DECIMAL, INT64, date_to_days
from repro.util.rng import RngStream


def build_store(n_items: int = 200, n_sales: int = 5000) -> Catalog:
    """A synthetic store in the paper's schema."""
    rng = RngStream(7, "store")
    categories = ["Shoes", "Hats", "Bags", "Coats", "Socks"]

    catalog = Catalog()
    catalog.add_table(
        Table(
            "inventory",
            [
                Column(
                    "invt_id", INT64,
                    np.arange(1, n_items + 1, dtype=np.int64),
                ),
                Column.strings(
                    "category",
                    [
                        categories[i]
                        for i in rng.child("cat").integers(
                            0, len(categories) - 1, size=n_items
                        )
                    ],
                ),
            ],
        ),
        primary_key="invt_id",
    )

    sale_rng = rng.child("sales")
    start = date_to_days("2018-01-01")
    catalog.add_table(
        Table(
            "sales_transactions",
            [
                Column(
                    "txn_id", INT64, np.arange(n_sales, dtype=np.int64)
                ),
                Column(
                    "invt_id", INT64,
                    sale_rng.child("item").integers(
                        1, n_items, size=n_sales
                    ).astype(np.int64),
                ),
                Column.strings(
                    "department",
                    [
                        ["mens", "womens", "kids"][i]
                        for i in sale_rng.child("dept").integers(
                            0, 2, size=n_sales
                        )
                    ],
                ),
                Column(
                    "saledate", INT64,
                    (start + sale_rng.child("day").integers(
                        0, 364, size=n_sales
                    )).astype(np.int64),
                ),
                Column(
                    "price", DECIMAL,
                    sale_rng.child("price").integers(
                        500, 20000, size=n_sales
                    ),
                ),
                Column(
                    "discount", DECIMAL,
                    sale_rng.child("disc").integers(0, 30, size=n_sales),
                ),
                Column(
                    "tax", DECIMAL,
                    sale_rng.child("tax").integers(0, 10, size=n_sales),
                ),
            ],
        ),
    )
    return catalog


def fig1_aggregate_query(device: AquomanDevice) -> None:
    """Net sale and revenue per department before 2018-12-01 (Fig. 1)."""
    print("Fig. 1 — aggregate query as one Table Task")
    netsale = col("price") * (1 - col("discount"))
    revenue = netsale * (1 + col("tax"))
    task = TableTask(
        table="sales_transactions",
        row_sel=PredicateProgram(
            (
                ColumnPredicate(
                    "saledate",
                    PredicateOp.LE,
                    date_to_days("2018-12-01"),
                ),
            )
        ),
        row_transf=(
            ("department", col("department")),
            ("netsale", netsale),
            ("revenue", revenue),
        ),
        operator=SwissknifeOp.AGGREGATE_GROUPBY,
        operator_args={
            "keys": ["department"],
            "aggs": [
                ("netsale", "sum", "netsale"),
                ("revenue", "sum", "revenue"),
            ],
        },
        output=TaskOutput.HOST,
    )
    print(f"  {task}")
    out = device.run_table_task(task)
    for dept, net, rev in zip(
        out.column("department").heap.decode_many(
            out.column("department").values
        ),
        out.column("netsale").values,
        out.column("revenue").values,
    ):
        print(
            f"  {dept:8s} netsale={net / 10**4:14.2f} "
            f"revenue={rev / 10**6:14.2f}"
        )


def fig5_join_query(device: AquomanDevice) -> None:
    """Total shoe sales after 2018-03-15, as the Fig. 5 task chain."""
    print("\nFig. 5 — join query as three Table Tasks through DRAM")
    tasks = [
        # tabletask_0: shoe inventory ids -> AQUOMAN_MEM_0
        TableTask(
            table="inventory",
            row_transf=(("invt_id", col("invt_id")),),
            operator=SwissknifeOp.NOP,
            output=TaskOutput.AQUOMAN_MEM,
            output_name="AQUOMAN_MEM_0",
        ),
        # tabletask_1: late sales' item ids, sort-merged with MEM_0
        TableTask(
            table="sales_transactions",
            row_sel=PredicateProgram(
                (
                    ColumnPredicate(
                        "saledate",
                        PredicateOp.GT,
                        date_to_days("2018-03-15"),
                    ),
                )
            ),
            row_transf=(("invt_id", col("invt_id")),),
            operator=SwissknifeOp.SORT_MERGE,
            operator_args={"with": "AQUOMAN_MEM_0", "key": "invt_id"},
            output=TaskOutput.AQUOMAN_MEM,
            output_name="AQUOMAN_MEM_1",
        ),
    ]
    # Pre-filter inventory to shoes inside task 0's transform: the
    # category predicate is a regex-accelerator bit column.
    tasks[0].row_transf = (
        ("invt_id", col("invt_id")),
        ("is_shoe", col("category") == lit("Shoes")),
    )

    for task in tasks:
        print(f"  {task}")
        device.run_table_task(task)

    # Reduce MEM_0 to the shoe ids (the NOP task's mask output), then
    # total the matching sales; on hardware the mask rides with MEM_0.
    mem0 = device.load_intermediate("AQUOMAN_MEM_0")
    shoe_ids = mem0.column("invt_id").values[
        mem0.column("is_shoe").values.astype(bool)
    ]
    merged = device.load_intermediate("AQUOMAN_MEM_1")
    matched = np.intersect1d(merged.column("invt_id").values, shoe_ids)

    # tabletask_2: aggregate prices of matched sales.
    sales = device.catalog.table("sales_transactions")
    keep = np.isin(sales.column("invt_id").values, matched) & (
        sales.column("saledate").values > date_to_days("2018-03-15")
    )
    total = int(sales.column("price").values[keep].sum())
    print(f"  shoe sales after 2018-03-15: {total / 100:.2f}")
    print(f"  device DRAM in use: {device.memory!r}")


def main() -> None:
    catalog = build_store()
    device = AquomanDevice(catalog)
    fig1_aggregate_query(device)
    fig5_join_query(device)
    meters = device.meters
    print("\nDevice meters:")
    print(f"  table tasks run : {meters.tasks_run}")
    print(f"  flash streamed  : {meters.flash_bytes} bytes")
    print(f"  rows transformed: {meters.rows_transformed}")
    print(f"  sorter traffic  : {meters.sorter_bytes} bytes")


if __name__ == "__main__":
    main()
