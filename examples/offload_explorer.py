"""Explore why each TPC-H query does (or doesn't) offload.

Prints, per query: the compiler's offload boundary, the suspension
reasons (the paper's Sec. VI-E conditions), device DRAM needs at
SF-1000, and the effect of shrinking device DRAM to 16 GB — a tour of
the decision machinery behind Fig. 16(c).

    python examples/offload_explorer.py [query_number]
"""

import sys

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.core.compiler import QueryCompiler
from repro.util.units import GB, fmt_bytes

DATA_SF = 0.01
TARGET_SF = 1000.0
RATIO = TARGET_SF / DATA_SF


def explain(db, number: int) -> None:
    name = f"q{number:02d}"
    plan = tpch.query(number)

    compiler = QueryCompiler(db, scale_ratio=RATIO)
    compiled = compiler.compile(plan)

    print(f"\n=== {name} ({tpch.query_name(number)}) ===")
    print("plan and per-node offload decisions:")
    for node in plan.walk():
        decision = compiled.decision(node)
        verdict = "DEVICE" if decision.offloadable else "host  "
        extra = (
            f"  <- {decision.reason.value}"
            if not decision.offloadable
            else ""
        )
        print(f"  [{verdict}] {node!r}{extra}")

    roots = compiled.offload_roots()
    print(f"offload roots: {len(roots)}")

    for dram in (40 * GB, 16 * GB):
        cfg = DeviceConfig(dram_bytes=dram, scale_ratio=RATIO)
        result = AquomanSimulator(db, cfg).run(plan, query=name)
        trace = result.trace
        print(
            f"with {fmt_bytes(dram)} device DRAM: "
            f"rows-on-device={trace.offload_fraction_rows:.0%}, "
            f"flash={fmt_bytes(trace.aquoman_flash_bytes * RATIO)}"
            f"@SF1000, "
            f"DRAM-peak={fmt_bytes(trace.aquoman_dram_peak_bytes * RATIO)}"
            f"@SF1000, "
            f"suspended={trace.suspend_reason or 'no'}"
        )


def main() -> None:
    print(f"Generating TPC-H at SF {DATA_SF}...")
    db = tpch.generate(DATA_SF)
    numbers = (
        [int(sys.argv[1])] if len(sys.argv) > 1 else list(tpch.ALL_QUERIES)
    )
    for number in numbers:
        explain(db, number)


if __name__ == "__main__":
    main()
