"""Reproduce the paper's evaluation (Fig. 16) end to end.

Runs all 22 TPC-H queries through the baseline engine and the AQUOMAN
simulator, scales the traces to SF-1000, times the five system
configurations and prints the paper's figures as tables — the same
pipeline the benchmark suite asserts on.

    python examples/tpch_evaluation.py [scale_factor]
"""

import sys

from repro import tpch
from repro.perf.tpch_eval import collect_traces
from repro.util.units import GB


def main() -> None:
    data_sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Generating TPC-H at SF {data_sf}...")
    db = tpch.generate(data_sf)

    print("Running 22 queries x {baseline, AQUOMAN-40GB, AQUOMAN-16GB}...")
    evaluation = collect_traces(db, target_sf=1000.0)
    report = evaluation.report(1000.0)

    print("\nFig 16(a): run time (seconds) at SF-1000")
    header = f"{'query':>6} {'S':>7} {'L':>7} {'S-AQ':>7} {'L-AQ':>7} {'S-AQ16':>7} {'L-speedup':>9}"
    print(header)
    print("-" * len(header))
    for q in report.queries:
        r = {s: report.timing(q, s).runtime_s for s in report.systems}
        print(
            f"{q:>6} {r['S']:7.0f} {r['L']:7.0f} {r['S-AQUOMAN']:7.0f} "
            f"{r['L-AQUOMAN']:7.0f} {r['S-AQUOMAN16']:7.0f} "
            f"{r['L'] / r['L-AQUOMAN']:8.1f}x"
        )
    totals = {s: report.total_runtime(s) for s in report.systems}
    print(
        f"{'total':>6} {totals['S']:7.0f} {totals['L']:7.0f} "
        f"{totals['S-AQUOMAN']:7.0f} {totals['L-AQUOMAN']:7.0f} "
        f"{totals['S-AQUOMAN16']:7.0f}"
    )

    print("\nFig 16(b): memory (GB) at SF-1000")
    print(f"{'query':>6} {'L max':>7} {'L-AQ max':>9} {'AQ DRAM':>8}")
    for q in report.queries:
        base = report.timing(q, "L")
        aug = report.timing(q, "L-AQUOMAN")
        print(
            f"{q:>6} {base.host_peak_bytes / GB:7.0f} "
            f"{aug.host_peak_bytes / GB:9.0f} "
            f"{aug.device_peak_bytes / GB:8.1f}"
        )

    print("\nFig 16(c): offload share and CPU saving (system L)")
    for q in report.queries:
        print(
            f"{q:>6} time-on-device={report.device_fraction(q):5.0%} "
            f"cpu-saving={report.cpu_saving(q):5.0%}"
        )

    print("\nHeadline claims:")
    print(f"  mean CPU cycles freed : {report.mean_cpu_saving():.0%}  (paper: 70%)")
    print(f"  mean DRAM saved       : {report.mean_dram_saving():.0%}  (paper: 60%)")
    ratio = totals["S-AQUOMAN16"] / totals["L"]
    print(f"  S-AQUOMAN16 vs L      : {ratio:.2f}x (paper: ~1.0x)")


if __name__ == "__main__":
    main()
