"""Run plain SQL against the engine and the AQUOMAN simulator.

The SQL front-end parses the analytic subset the device targets and
plans it the way the paper's DBMS layer would (filter pushdown,
equi-join ordering, aggregate placement); the resulting plans flow
through the same offload compiler as the hand-built TPC-H plans.

    python examples/sql_queries.py
"""

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.engine import Engine
from repro.sqlir import plan_sql
from repro.util.units import GB

QUERIES = {
    "revenue by ship mode": """
        SELECT l_shipmode, sum(l_extendedprice * (1 - l_discount)) AS revenue,
               count(*) AS n
        FROM lineitem
        WHERE l_shipdate >= date '1995-01-01'
          AND l_shipdate < date '1996-01-01'
        GROUP BY l_shipmode
        ORDER BY revenue DESC
    """,
    "big urgent orders": """
        SELECT o_orderkey, o_totalprice
        FROM orders
        WHERE o_orderpriority = '1-URGENT' AND o_totalprice > 400000
        ORDER BY o_totalprice DESC
        LIMIT 5
    """,
    "nation revenue (3-way join)": """
        SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem, supplier, nation
        WHERE l_suppkey = s_suppkey
          AND s_nationkey = n_nationkey
          AND l_shipdate >= date '1997-01-01'
        GROUP BY n_name
        ORDER BY revenue DESC
        LIMIT 5
    """,
    "promo share inputs": """
        SELECT sum(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0.00 END) AS promo,
               sum(l_extendedprice * (1 - l_discount)) AS total
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= date '1995-09-01'
          AND l_shipdate < date '1995-10-01'
    """,
}


def main() -> None:
    print("Generating TPC-H at SF 0.01...")
    db = tpch.generate(0.01)
    config = DeviceConfig(dram_bytes=40 * GB, scale_ratio=1000 / 0.01)

    for title, sql in QUERIES.items():
        print(f"\n=== {title} ===")
        plan = plan_sql(sql, db)

        baseline = Engine(db).execute(plan)
        result = AquomanSimulator(db, config).run(
            plan_sql(sql, db), query=title
        )
        assert baseline.equals(result.table.renamed("result"))

        print(baseline.head(6))
        trace = result.trace
        print(
            f"-> device: {trace.offload_fraction_rows:.0%} of rows, "
            f"{trace.aquoman_flash_bytes >> 10} KiB streamed"
            + (f", suspended: {trace.suspend_reason}"
               if trace.suspended else "")
        )


if __name__ == "__main__":
    main()
