"""Quickstart: generate TPC-H, run a query both ways, compare.

Generates a small TPC-H catalog, runs Q6 on the software baseline (the
MonetDB stand-in) and through the AQUOMAN simulator, verifies the
results are identical, and prints what the device did.

    python examples/quickstart.py
"""

from repro import tpch
from repro.core import AquomanSimulator, DeviceConfig
from repro.engine import Engine
from repro.util.units import GB, fmt_bytes


def main() -> None:
    print("Generating TPC-H at SF 0.01 (~60k lineitems)...")
    db = tpch.generate(scale_factor=0.01)
    print(f"  tables: {db.table_names()}")
    print(f"  on-flash size: {fmt_bytes(db.nbytes)}")

    plan = tpch.query(6)
    print("\nQ6 (forecasting revenue change) on the software baseline:")
    baseline = Engine(db).execute(plan)
    print(baseline.head())

    print("\nSame query through the AQUOMAN simulator:")
    # scale_ratio tells the device model to make capacity decisions as
    # if the data were SF-1000 on a real 1 TB drive.
    config = DeviceConfig(dram_bytes=40 * GB, scale_ratio=1000 / 0.01)
    result = AquomanSimulator(db, config).run(tpch.query(6), query="q06")
    print(result.table.head())

    assert baseline.equals(result.table.renamed("result"))
    print("\nResults are bit-identical. Device activity:")
    trace = result.trace
    print(f"  flash streamed : {fmt_bytes(trace.aquoman_flash_bytes)}")
    print(f"  rows on device : {trace.offload_fraction_rows:.0%}")
    print(f"  output DMA     : {fmt_bytes(trace.aquoman_output_bytes)}")
    print(f"  suspended      : {trace.suspended}")


if __name__ == "__main__":
    main()
